#include "src/net/message.h"

namespace calliope {

const char* AdmissionClassName(AdmissionClass klass) {
  switch (klass) {
    case AdmissionClass::kInteractive:
      return "interactive";
    case AdmissionClass::kStandard:
      return "standard";
    case AdmissionClass::kBulk:
      return "bulk";
  }
  return "standard";
}

namespace {

Bytes StringBytes(const std::string& s) { return Bytes(static_cast<int64_t>(s.size())); }

struct SizeVisitor {
  Bytes operator()(const OpenSessionRequest& m) const {
    return Bytes(16) + StringBytes(m.customer) + StringBytes(m.credential);
  }
  Bytes operator()(const OpenSessionResponse& m) const {
    return Bytes(24) + StringBytes(m.error);
  }
  Bytes operator()(const ListContentRequest&) const { return Bytes(16); }
  Bytes operator()(const ListContentResponse& m) const {
    Bytes size(24);
    for (const auto& item : m.items) {
      size += Bytes(24) + StringBytes(item.name) + StringBytes(item.type);
    }
    return size;
  }
  Bytes operator()(const RegisterPortRequest& m) const {
    Bytes size = Bytes(32) + StringBytes(m.port_name) + StringBytes(m.type_name) +
                 StringBytes(m.node);
    for (const auto& component : m.component_ports) {
      size += Bytes(8) + StringBytes(component);
    }
    return size;
  }
  Bytes operator()(const UnregisterPortRequest& m) const {
    return Bytes(16) + StringBytes(m.port_name);
  }
  Bytes operator()(const PlayRequest& m) const {
    return Bytes(17) + StringBytes(m.content) + StringBytes(m.display_port);
  }
  Bytes operator()(const PlayResponse& m) const { return Bytes(32) + StringBytes(m.error); }
  Bytes operator()(const RecordRequest& m) const {
    return Bytes(32) + StringBytes(m.content_name) + StringBytes(m.type_name) +
           StringBytes(m.display_port);
  }
  Bytes operator()(const RecordResponse& m) const { return Bytes(32) + StringBytes(m.error); }
  Bytes operator()(const DeleteContentRequest& m) const {
    return Bytes(16) + StringBytes(m.content);
  }
  Bytes operator()(const LoadFastScanRequest& m) const {
    return Bytes(16) + StringBytes(m.content) + StringBytes(m.fast_forward_file) +
           StringBytes(m.fast_backward_file);
  }
  Bytes operator()(const SimpleResponse& m) const { return Bytes(16) + StringBytes(m.error); }
  Bytes operator()(const MsuStartStream& m) const {
    Bytes size = Bytes(112) + StringBytes(m.file) + StringBytes(m.protocol) +
                 StringBytes(m.client_node) + StringBytes(m.fast_forward_file) +
                 StringBytes(m.fast_backward_file);
    for (const SharedMemberSpec& member : m.shared_members) {
      size += MemberBytes(member);
    }
    return size;
  }
  Bytes operator()(const SharedMemberSplit& m) const {
    return Bytes(64) + StringBytes(m.msu_node);
  }
  Bytes operator()(const MsuStartStreamResponse& m) const {
    return Bytes(16) + StringBytes(m.error);
  }
  Bytes operator()(const MsuRegisterRequest& m) const {
    return Bytes(48) + StringBytes(m.msu_node) +
           Bytes(static_cast<int64_t>(m.active_streams.size()) * 8);
  }
  Bytes operator()(const MsuRegisterResponse& m) const {
    return Bytes(32) + StringBytes(m.error) +
           Bytes(static_cast<int64_t>(m.stale_streams.size()) * 8);
  }
  Bytes operator()(const StreamTerminated& m) const { return Bytes(56) + StringBytes(m.file); }
  Bytes operator()(const StreamProgressReport& m) const {
    return Bytes(16) + StringBytes(m.msu_node) +
           Bytes(static_cast<int64_t>(m.entries.size()) * 16);
  }
  Bytes operator()(const PendingRequestFailed& m) const {
    return Bytes(16) + StringBytes(m.error);
  }
  Bytes operator()(const VcrCommand&) const { return Bytes(32); }
  Bytes operator()(const VcrAck& m) const { return Bytes(16) + StringBytes(m.error); }
  Bytes operator()(const MsuDeleteFile& m) const { return Bytes(16) + StringBytes(m.file); }
  Bytes operator()(const StreamGroupInfo& m) const {
    return Bytes(24) + StringBytes(m.msu_node) +
           Bytes(static_cast<int64_t>(m.members.size()) * 16);
  }
  Bytes operator()(const MsuPrepareCopy& m) const { return Bytes(32) + StringBytes(m.file); }
  Bytes operator()(const MsuPrepareCopyResponse& m) const {
    return Bytes(40) + StringBytes(m.error);
  }
  Bytes operator()(const MsuBeginCopy& m) const {
    return Bytes(64) + StringBytes(m.content) + StringBytes(m.source_node) +
           StringBytes(m.source_file) + StringBytes(m.replica_file);
  }
  Bytes operator()(const MsuAbortCopy&) const { return Bytes(24); }
  Bytes operator()(const ReplPullRequest&) const { return Bytes(24); }
  Bytes operator()(const ReplPullResponse& m) const {
    // The bulk page payload rides in `page_bytes` — this is what makes a
    // replica copy cost real simulated network time.
    return Bytes(32) + StringBytes(m.error) + m.page_bytes;
  }
  Bytes operator()(const ReplicaInstalled& m) const {
    return Bytes(40) + StringBytes(m.msu_node) + StringBytes(m.content) + StringBytes(m.file);
  }
  Bytes operator()(const ReplicaCopyFailed& m) const {
    return Bytes(16) + StringBytes(m.msu_node) + StringBytes(m.error);
  }
  Bytes operator()(const ReplAppendRequest& m) const {
    Bytes size(48);
    for (const ReplRecord& record : m.records) {
      size += ReplRecordSize(record);
    }
    return size;
  }
  Bytes operator()(const ReplAppendResponse& m) const {
    return Bytes(32) + StringBytes(m.error);
  }

 private:
  static Bytes MemberBytes(const SharedMemberSpec& member) {
    return Bytes(32) + StringBytes(member.client_node);
  }
  static Bytes PortBytes(const DisplayPortSpec& port) {
    Bytes size = Bytes(24) + StringBytes(port.name) + StringBytes(port.type_name) +
                 StringBytes(port.node);
    for (const auto& component : port.component_ports) {
      size += Bytes(8) + StringBytes(component);
    }
    return size;
  }
  static Bytes RequestBytes(const PendingPlayRequest& request) {
    // +9: the admission class byte and the enqueue stamp.
    return Bytes(57) + StringBytes(request.content) + StringBytes(request.type_name) +
           StringBytes(request.prefer_msu) + PortBytes(request.port) +
           Bytes(static_cast<int64_t>(request.start_offsets.size()) * 8);
  }
  static Bytes ReplRecordSize(const ReplRecord& record) {
    struct RecordVisitor {
      Bytes operator()(const ReplSessionOpened& r) const {
        return Bytes(24) + StringBytes(r.customer);
      }
      Bytes operator()(const ReplSessionClosed&) const { return Bytes(16); }
      Bytes operator()(const ReplPortRegistered& r) const {
        return Bytes(16) + PortBytes(r.port);
      }
      Bytes operator()(const ReplPortUnregistered& r) const {
        return Bytes(16) + StringBytes(r.port_name);
      }
      Bytes operator()(const ReplMsuUp& r) const { return Bytes(40) + StringBytes(r.node); }
      Bytes operator()(const ReplMsuDown& r) const { return Bytes(8) + StringBytes(r.node); }
      Bytes operator()(const ReplGroupStarted& r) const {
        Bytes size = Bytes(24) + StringBytes(r.msu) + RequestBytes(r.request);
        for (const ReplStreamMember& member : r.members) {
          size += Bytes(56) + StringBytes(member.content_item);
        }
        return size;
      }
      Bytes operator()(const ReplStreamEnded&) const { return Bytes(24); }
      Bytes operator()(const ReplGroupEnded&) const { return Bytes(16); }
      Bytes operator()(const ReplPendingPushed& r) const {
        return Bytes(8) + RequestBytes(r.request);
      }
      Bytes operator()(const ReplPendingPopped&) const { return Bytes(16); }
      Bytes operator()(const ReplReplicationStarted& r) const {
        return Bytes(48) + StringBytes(r.content) + StringBytes(r.source_msu) +
               StringBytes(r.source_file) + StringBytes(r.target_msu) +
               StringBytes(r.replica_file);
      }
      Bytes operator()(const ReplReplicationEnded&) const { return Bytes(24); }
      Bytes operator()(const ReplProgress& r) const {
        return Bytes(8) + Bytes(static_cast<int64_t>(r.entries.size()) * 16);
      }
    };
    return std::visit(RecordVisitor{}, record);
  }
};

struct NameVisitor {
  const char* operator()(const OpenSessionRequest&) const { return "OpenSessionRequest"; }
  const char* operator()(const OpenSessionResponse&) const { return "OpenSessionResponse"; }
  const char* operator()(const ListContentRequest&) const { return "ListContentRequest"; }
  const char* operator()(const ListContentResponse&) const { return "ListContentResponse"; }
  const char* operator()(const RegisterPortRequest&) const { return "RegisterPortRequest"; }
  const char* operator()(const UnregisterPortRequest&) const { return "UnregisterPortRequest"; }
  const char* operator()(const PlayRequest&) const { return "PlayRequest"; }
  const char* operator()(const PlayResponse&) const { return "PlayResponse"; }
  const char* operator()(const RecordRequest&) const { return "RecordRequest"; }
  const char* operator()(const RecordResponse&) const { return "RecordResponse"; }
  const char* operator()(const DeleteContentRequest&) const { return "DeleteContentRequest"; }
  const char* operator()(const LoadFastScanRequest&) const { return "LoadFastScanRequest"; }
  const char* operator()(const SimpleResponse&) const { return "SimpleResponse"; }
  const char* operator()(const MsuStartStream&) const { return "MsuStartStream"; }
  const char* operator()(const MsuStartStreamResponse&) const { return "MsuStartStreamResponse"; }
  const char* operator()(const MsuRegisterRequest&) const { return "MsuRegisterRequest"; }
  const char* operator()(const MsuRegisterResponse&) const { return "MsuRegisterResponse"; }
  const char* operator()(const StreamTerminated&) const { return "StreamTerminated"; }
  const char* operator()(const StreamProgressReport&) const { return "StreamProgressReport"; }
  const char* operator()(const PendingRequestFailed&) const { return "PendingRequestFailed"; }
  const char* operator()(const VcrCommand&) const { return "VcrCommand"; }
  const char* operator()(const VcrAck&) const { return "VcrAck"; }
  const char* operator()(const MsuDeleteFile&) const { return "MsuDeleteFile"; }
  const char* operator()(const StreamGroupInfo&) const { return "StreamGroupInfo"; }
  const char* operator()(const SharedMemberSplit&) const { return "SharedMemberSplit"; }
  const char* operator()(const MsuPrepareCopy&) const { return "MsuPrepareCopy"; }
  const char* operator()(const MsuPrepareCopyResponse&) const { return "MsuPrepareCopyResponse"; }
  const char* operator()(const MsuBeginCopy&) const { return "MsuBeginCopy"; }
  const char* operator()(const MsuAbortCopy&) const { return "MsuAbortCopy"; }
  const char* operator()(const ReplPullRequest&) const { return "ReplPullRequest"; }
  const char* operator()(const ReplPullResponse&) const { return "ReplPullResponse"; }
  const char* operator()(const ReplicaInstalled&) const { return "ReplicaInstalled"; }
  const char* operator()(const ReplicaCopyFailed&) const { return "ReplicaCopyFailed"; }
  const char* operator()(const ReplAppendRequest&) const { return "ReplAppendRequest"; }
  const char* operator()(const ReplAppendResponse&) const { return "ReplAppendResponse"; }
};

}  // namespace

Bytes WireSize(const MessageBody& body) { return std::visit(SizeVisitor{}, body); }

Bytes WireSize(const Envelope& envelope) {
  // TCP/IP headers, RPC framing, and the ack segment the reliable stream
  // generates per message.
  return Bytes(150) + WireSize(envelope.body);
}

const char* MessageName(const MessageBody& body) { return std::visit(NameVisitor{}, body); }

}  // namespace calliope
