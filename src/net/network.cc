#include "src/net/network.h"

#include <cassert>
#include <utility>

#include "src/util/logging.h"

namespace calliope {

namespace {
constexpr Bytes kUdpIpHeader = Bytes(28);
}  // namespace

// ---------------------------------------------------------------- TcpConn

TcpConn::TcpConn(Network* network, uint64_t conn_id, std::string local_node, int local_port,
                 std::string peer_node, int peer_port)
    : network_(network),
      conn_id_(conn_id),
      local_node_(std::move(local_node)),
      local_port_(local_port),
      peer_node_(std::move(peer_node)),
      peer_port_(peer_port) {}

Co<Status> TcpConn::Send(Envelope envelope) {
  return SendInternal(std::move(envelope), /*fin=*/false);
}

Co<Status> TcpConn::SendInternal(Envelope envelope, bool fin) {
  Envelope local = std::move(envelope);
  if (state_ != State::kOpen) {
    co_return UnavailableError("connection closed");
  }
  Datagram datagram;
  datagram.proto = Datagram::Proto::kTcp;
  datagram.src_node = local_node_;
  datagram.src_port = local_port_;
  datagram.dst_node = peer_node_;
  datagram.dst_port = peer_port_;
  datagram.size = fin ? Bytes(40) : WireSize(local);
  datagram.conn_id = conn_id_;
  datagram.seq = next_tx_seq_++;
  datagram.tcp_fin = fin;
  if (!fin) {
    datagram.envelope = std::make_shared<const Envelope>(std::move(local));
  }
  const bool sent = co_await network_->Transmit(std::move(datagram), /*blocking=*/true);
  if (!sent) {
    co_return UnavailableError("send failed: peer or path down");
  }
  co_return OkStatus();
}

Co<Result<Envelope>> TcpConn::Call(MessageArg body, SimTime timeout) {
  if (state_ != State::kOpen) {
    co_return Result<Envelope>(UnavailableError("connection closed"));
  }
  if (timeout == SimTime()) {
    timeout = network_->params().rpc_timeout;
  }
  const char* rpc_name = MessageName(body.value);
  const SimTime rpc_start = network_->sim().Now();
  const uint64_t id = next_rpc_id_++;
  auto pending = std::make_shared<PendingCall>(network_->sim());
  pending_calls_[id] = pending;

  Envelope request_envelope{id, false, std::move(body.value)};
  const Status sent = co_await SendInternal(std::move(request_envelope), false);
  if (!sent.ok()) {
    pending_calls_.erase(id);
    TraceRpc(rpc_name, rpc_start, "send-failed");
    co_return Result<Envelope>(sent);
  }
  EventToken timer = network_->sim().ScheduleCancelableAt(
      network_->sim().Now() + timeout, [pending] {
        pending->failed = true;
        pending->cond.NotifyAll();
      });
  while (pending->result == nullptr && !pending->failed) {
    co_await pending->cond.Wait();
  }
  timer.Cancel();
  pending_calls_.erase(id);
  if (pending->result != nullptr) {
    TraceRpc(rpc_name, rpc_start, "ok");
    co_return Result<Envelope>(std::move(*pending->result));
  }
  if (state_ != State::kOpen) {
    TraceRpc(rpc_name, rpc_start, "broken");
    co_return Result<Envelope>(UnavailableError("connection broke during call"));
  }
  TraceRpc(rpc_name, rpc_start, "timeout");
  co_return Result<Envelope>(DeadlineExceededError("rpc timed out"));
}

void TcpConn::TraceRpc(const char* name, SimTime start, const char* outcome) {
  TraceRecorder* tracer = network_->trace();
  if (tracer == nullptr || !tracer->enabled()) {
    return;
  }
  tracer->Span("net", "net", std::string("rpc:") + name, start,
               local_node_ + "->" + peer_node_ + " " + outcome);
}

void TcpConn::Close() {
  if (state_ != State::kOpen) {
    return;
  }
  // Fire-and-forget FIN; the local side is closed immediately.
  [](TcpConn* conn) -> Task { co_await conn->SendInternal(Envelope{}, /*fin=*/true); }(this);
  MarkDead(State::kClosed);
}

void TcpConn::HandleIncoming(const Datagram& datagram) {
  if (state_ != State::kOpen) {
    return;
  }
  if (datagram.tcp_rst) {
    MarkDead(State::kBroken);
    return;
  }
  // In-order delivery with a reorder buffer (defensive; the simulated path
  // preserves order for a given connection).
  if (datagram.tcp_fin) {
    reorder_buffer_[datagram.seq] = Envelope{0, false, MessageBody{SimpleResponse{}}};
    fin_seq_ = datagram.seq;
  } else {
    reorder_buffer_[datagram.seq] = *datagram.envelope;
  }
  while (true) {
    auto it = reorder_buffer_.find(next_rx_seq_);
    if (it == reorder_buffer_.end()) {
      break;
    }
    Envelope envelope = std::move(it->second);
    const int64_t seq = it->first;
    reorder_buffer_.erase(it);
    ++next_rx_seq_;
    if (seq == fin_seq_) {
      MarkDead(State::kClosed);
      return;
    }
    DeliverInOrder(envelope);
    if (state_ != State::kOpen) {
      return;
    }
  }
}

void TcpConn::DeliverInOrder(const Envelope& envelope) {
  if (envelope.is_response) {
    auto it = pending_calls_.find(envelope.rpc_id);
    if (it != pending_calls_.end()) {
      it->second->result = std::make_unique<Envelope>(envelope);
      it->second->cond.NotifyAll();
    }
    return;
  }
  if (request_handler_) {
    RunRequestHandler(envelope);
    return;
  }
  if (receive_handler_) {
    receive_handler_(this, envelope);
  }
}

Task TcpConn::RunRequestHandler(Envelope request) {
  MessageBody response = co_await request_handler_(request.body);
  if (state_ != State::kOpen) {
    co_return;
  }
  co_await SendInternal(Envelope{request.rpc_id, true, std::move(response)}, false);
}

void TcpConn::MarkDead(State state) {
  if (state_ != State::kOpen) {
    return;
  }
  state_ = state;
  if (state == State::kBroken && network_->trace() != nullptr) {
    network_->trace()->Instant("net", "net", "conn-broken", local_node_ + "->" + peer_node_);
  }
  for (auto& [id, pending] : pending_calls_) {
    pending->failed = true;
    pending->cond.NotifyAll();
  }
  if (close_handler_) {
    close_handler_(this);
  }
}

// ---------------------------------------------------------------- NetNode

NetNode::NetNode(Network* network, std::string name, Machine* machine, bool on_intra)
    : network_(network), name_(std::move(name)), machine_(machine), on_intra_(on_intra) {}

Status NetNode::BindUdp(int port, UdpHandler handler) {
  if (udp_ports_.contains(port)) {
    return AlreadyExistsError("udp port in use: " + std::to_string(port));
  }
  udp_ports_[port] = std::move(handler);
  return OkStatus();
}

Status NetNode::CloseUdp(int port) {
  if (udp_ports_.erase(port) == 0) {
    return NotFoundError("udp port not bound: " + std::to_string(port));
  }
  return OkStatus();
}

Co<bool> NetNode::SendUdp(std::string dst_node, int dst_port, Bytes size,
                          std::shared_ptr<const void> payload, int src_port) {
  Datagram datagram;
  datagram.proto = Datagram::Proto::kUdp;
  datagram.src_node = name_;
  datagram.src_port = src_port;
  datagram.dst_node = std::move(dst_node);
  datagram.dst_port = dst_port;
  datagram.size = size;
  datagram.payload = std::move(payload);
  return network_->Transmit(std::move(datagram), /*blocking=*/false);
}

Co<bool> NetNode::SendUdpFlow(std::string dst_node, int dst_port, Bytes size,
                              int64_t packet_count, std::shared_ptr<const void> payload,
                              int src_port) {
  Datagram datagram;
  datagram.proto = Datagram::Proto::kUdp;
  datagram.src_node = name_;
  datagram.src_port = src_port;
  datagram.dst_node = std::move(dst_node);
  datagram.dst_port = dst_port;
  datagram.size = size;
  datagram.flow_packets = packet_count;
  datagram.payload = std::move(payload);
  return network_->Transmit(std::move(datagram), /*blocking=*/true);
}

Status NetNode::ListenTcp(int port, AcceptHandler on_accept) {
  if (tcp_listeners_.contains(port)) {
    return AlreadyExistsError("tcp port in use: " + std::to_string(port));
  }
  tcp_listeners_[port] = std::move(on_accept);
  return OkStatus();
}

Co<Result<TcpConn*>> NetNode::ConnectTcp(std::string dst_node, int dst_port) {
  if (down_) {
    co_return Result<TcpConn*>(UnavailableError("local node down"));
  }
  // Handshake: one small segment each way.
  Datagram syn;
  syn.proto = Datagram::Proto::kTcp;
  syn.src_node = name_;
  syn.dst_node = dst_node;
  syn.dst_port = dst_port;
  syn.size = Bytes(40);
  syn.conn_id = 0;  // handshake, not yet a connection
  syn.seq = -1;
  const bool sent = co_await network_->Transmit(std::move(syn), /*blocking=*/true);
  if (!sent) {
    co_return Result<TcpConn*>(UnavailableError("connect: path down"));
  }
  co_await network_->sim().Delay(network_->params().propagation_delay * 2);

  NetNode* peer = network_->FindNode(dst_node);
  if (peer == nullptr) {
    co_return Result<TcpConn*>(NotFoundError("no such node: " + dst_node));
  }
  if (peer->down()) {
    co_return Result<TcpConn*>(UnavailableError("peer down: " + dst_node));
  }
  auto listener = peer->tcp_listeners_.find(dst_port);
  if (listener == peer->tcp_listeners_.end()) {
    co_return Result<TcpConn*>(UnavailableError("connection refused: " + dst_node + ":" +
                                                std::to_string(dst_port)));
  }
  co_return network_->EstablishConn(this, peer, dst_port, listener->second);
}

void NetNode::SetDown(bool down) {
  if (down_ == down) {
    return;
  }
  down_ = down;
  if (down_) {
    network_->BreakConnsTouching(name_);
  }
}

void NetNode::HandleReceivedDatagram(const Datagram& datagram) {
  if (down_) {
    return;
  }
  if (datagram.proto == Datagram::Proto::kUdp) {
    auto it = udp_ports_.find(datagram.dst_port);
    if (it != udp_ports_.end()) {
      it->second(datagram);
    }
    return;
  }
  if (datagram.conn_id == 0) {
    return;  // handshake segment; connection established out of band
  }
  TcpConn* conn = network_->FindConn(datagram.conn_id, name_, datagram.dst_port);
  if (conn != nullptr) {
    conn->HandleIncoming(datagram);
  }
}

// ---------------------------------------------------------------- Network

Network::Network(Simulator& sim, NetworkParams params)
    : sim_(&sim), params_(params), fault_rng_(params.fault_seed) {}

void Network::AttachObservability(MetricsRegistry* metrics, TraceRecorder* trace) {
  metrics_ = metrics;
  trace_ = trace;
  if (metrics_ == nullptr) {
    datagrams_sent_ = nullptr;
    return;
  }
  datagrams_sent_ = &metrics_->counter("net.datagrams.sent");
  // All monotonic tallies: pull-mode counters, so the sampler's per-window
  // deltas turn them into byte/drop rates.
  metrics_->SetCounterCallback("net.bytes.intra", [this] { return intra_bytes_.count(); });
  metrics_->SetCounterCallback("net.bytes.delivery",
                               [this] { return delivery_bytes_.count(); });
  metrics_->SetCounterCallback("net.udp.dropped", [this] { return udp_dropped_; });
  metrics_->SetCounterCallback("net.fault.dropped", [this] { return fault_dropped_; });
  metrics_->SetCounterCallback("net.fault.delayed", [this] { return fault_delayed_; });
}

NetNode* Network::AddNode(const std::string& name, Machine* machine, bool on_intra) {
  assert(!nodes_.contains(name));
  auto node = std::unique_ptr<NetNode>(new NetNode(this, name, machine, on_intra));
  NetNode* raw = node.get();
  nodes_[name] = std::move(node);

  auto hook = [this, raw](Nic& nic) {
    nic.set_wire_sink([this](Frame frame) {
      auto datagram = std::static_pointer_cast<const Datagram>(frame.payload);
      SimTime delay = params_.propagation_delay;
      if (datagram->proto == Datagram::Proto::kUdp) {
        if (params_.udp_loss_rate > 0 && fault_rng_.NextBernoulli(params_.udp_loss_rate)) {
          ++udp_dropped_;
          return;
        }
        if (params_.udp_jitter_max > SimTime()) {
          delay += SimTime(static_cast<int64_t>(
              fault_rng_.NextDouble() * static_cast<double>(params_.udp_jitter_max.nanos())));
        }
      }
      if (fault_hook_) {
        const LinkFault fault = fault_hook_(*datagram);
        if (fault.drop) {
          ++fault_dropped_;
          return;
        }
        if (fault.extra_delay > SimTime()) {
          ++fault_delayed_;
          delay += fault.extra_delay;
        }
      }
      sim_->ScheduleAfter(delay, [this, datagram] { DeliverToNode(*datagram); });
    });
    nic.set_rx_sink([raw](Frame frame) {
      auto datagram = std::static_pointer_cast<const Datagram>(frame.payload);
      raw->HandleReceivedDatagram(*datagram);
    });
  };
  hook(machine->fddi());
  hook(machine->ethernet());
  return raw;
}

NetNode* Network::FindNode(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second.get();
}

Result<Segment> Network::Route(const std::string& src, const std::string& dst) const {
  auto src_it = nodes_.find(src);
  auto dst_it = nodes_.find(dst);
  if (src_it == nodes_.end() || dst_it == nodes_.end()) {
    return NotFoundError("no such node: " + (src_it == nodes_.end() ? src : dst));
  }
  if (params_.use_intra_lan && src_it->second->on_intra() && dst_it->second->on_intra()) {
    return Segment::kIntra;
  }
  return Segment::kDelivery;
}

Co<bool> Network::Transmit(Datagram datagram, bool blocking) {
  NetNode* src = FindNode(datagram.src_node);
  if (src == nullptr || src->down()) {
    co_return false;
  }
  auto segment = Route(datagram.src_node, datagram.dst_node);
  if (!segment.ok()) {
    co_return false;
  }
  Nic& nic =
      *segment == Segment::kIntra ? src->machine().ethernet() : src->machine().fddi();
  // One UDP/IP header per logical packet: an aggregated flow chunk occupies
  // the same wire bytes as the burst it stands in for.
  const Bytes wire_size = datagram.size + kUdpIpHeader * datagram.flow_packets;
  if (*segment == Segment::kIntra) {
    intra_bytes_ += wire_size;
  } else {
    delivery_bytes_ += wire_size;
  }
  if (datagrams_sent_ != nullptr) {
    datagrams_sent_->Add(datagram.flow_packets);
  }
  Frame frame;
  frame.size = wire_size;
  frame.packet_count = datagram.flow_packets;
  frame.payload = std::make_shared<Datagram>(std::move(datagram));
  if (blocking) {
    co_await nic.SendBlocking(std::move(frame));
    co_return true;
  }
  co_return co_await nic.TrySend(std::move(frame));
}

void Network::DeliverToNode(const Datagram& datagram) {
  NetNode* dst = FindNode(datagram.dst_node);
  if (dst == nullptr || dst->down()) {
    return;
  }
  auto segment = Route(datagram.src_node, datagram.dst_node);
  if (!segment.ok()) {
    return;
  }
  Nic& nic =
      *segment == Segment::kIntra ? dst->machine().ethernet() : dst->machine().fddi();
  Frame frame;
  frame.size = datagram.size + kUdpIpHeader * datagram.flow_packets;
  frame.packet_count = datagram.flow_packets;
  frame.payload = std::make_shared<Datagram>(datagram);
  nic.DeliverFromWire(std::move(frame));
}

TcpConn* Network::EstablishConn(NetNode* client, NetNode* server, int server_port,
                                const AcceptHandler& on_accept) {
  const uint64_t id = next_conn_id_++;
  const int client_port = client->AllocateEphemeralPort();
  auto client_conn = std::unique_ptr<TcpConn>(
      new TcpConn(this, id, client->name(), client_port, server->name(), server_port));
  auto server_conn = std::unique_ptr<TcpConn>(
      new TcpConn(this, id, server->name(), server_port, client->name(), client_port));
  TcpConn* client_raw = client_conn.get();
  TcpConn* server_raw = server_conn.get();
  conns_.push_back(std::move(client_conn));
  conns_.push_back(std::move(server_conn));
  conn_index_[{id, client->name(), client_port}] = client_raw;
  conn_index_[{id, server->name(), server_port}] = server_raw;
  on_accept(server_raw);
  return client_raw;
}

TcpConn* Network::FindConn(uint64_t conn_id, const std::string& node, int local_port) {
  auto it = conn_index_.find({conn_id, node, local_port});
  return it == conn_index_.end() ? nullptr : it->second;
}

void Network::BreakConnsTouching(const std::string& node) {
  for (auto& conn : conns_) {
    if (conn->state_ == TcpConn::State::kOpen &&
        (conn->local_node() == node || conn->peer_node() == node)) {
      conn->MarkDead(TcpConn::State::kBroken);
    }
  }
}

double Network::SegmentUtilization(Segment segment, SimTime since) const {
  const SimTime elapsed = sim_->Now() - since;
  if (elapsed <= SimTime()) {
    return 0.0;
  }
  const DataRate rate = segment == Segment::kIntra ? intra_rate_ : delivery_rate_;
  const double bits = static_cast<double>(segment_bytes(segment).count()) * 8.0;
  return bits / (static_cast<double>(rate.bits_per_sec()) * elapsed.seconds());
}

}  // namespace calliope
