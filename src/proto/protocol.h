// Protocol extension modules (§2.3.2).
//
// "An MSU protocol extension module is comprised of two functions. The first
// performs any operations required by the protocol beyond the normal sending
// or receiving of data packets... The MSU calls the second extension function
// during recording to construct a delivery schedule."
//
// Modules ship with the MSU for RTP (separate control port, control messages
// interleaved into the recorded stream, delivery times from sender RTP
// timestamps), VAT audio (arrival-time schedule) and a raw constant-rate
// protocol ("any protocol and/or encoding which can be handled by
// transmitting fixed sized packets at a constant rate").
#ifndef CALLIOPE_SRC_PROTO_PROTOCOL_H_
#define CALLIOPE_SRC_PROTO_PROTOCOL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/media/packet.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace calliope {

class ProtocolModule {
 public:
  virtual ~ProtocolModule() = default;

  virtual std::string_view name() const = 0;

  // --- recording-side extension points -----------------------------------

  // Derives the stored delivery offset for an arriving packet.
  // `arrival_offset` is the packet's arrival time minus the recording start.
  // The default behaviour is the paper's default: use the arrival time.
  virtual SimTime RecordDeliveryOffset(const MediaPacket& packet, SimTime arrival_offset) {
    return arrival_offset;
  }

  // Invoked per recorded packet; a module may emit extra packets to
  // interleave into the stream (RTP interleaves its control messages).
  virtual void OnRecordPacket(const MediaPacket& packet, SimTime arrival_offset,
                              PacketSequence& interleave_out) {}

  // --- playback-side extension points -------------------------------------

  struct PlaybackRoute {
    bool send = true;
    bool to_control_port = false;
  };
  // Routes a stored packet on replay: control messages go back out through
  // the protocol's control port, data through the data port.
  virtual PlaybackRoute RoutePlayback(const MediaPacket& packet) const {
    return PlaybackRoute{};
  }

  // True if this protocol uses a second (control) port, like RTP/RTCP.
  virtual bool uses_control_port() const { return false; }

  // For constant-rate protocols the schedule is computed, not stored
  // (§2.2.1); returns the zero rate for variable-rate protocols.
  virtual DataRate constant_rate() const { return DataRate(); }
  virtual bool is_constant_rate() const { return !constant_rate().is_zero(); }
};

// RTP (then an Internet draft): data + control ports; delivery offsets from
// the sender's 90 kHz media timestamps, immune to network-induced jitter.
class RtpModule : public ProtocolModule {
 public:
  std::string_view name() const override { return "rtp"; }
  SimTime RecordDeliveryOffset(const MediaPacket& packet, SimTime arrival_offset) override;
  void OnRecordPacket(const MediaPacket& packet, SimTime arrival_offset,
                      PacketSequence& interleave_out) override;
  PlaybackRoute RoutePlayback(const MediaPacket& packet) const override;
  bool uses_control_port() const override { return true; }

 private:
  bool have_first_ = false;
  uint32_t first_timestamp_ = 0;
  SimTime first_arrival_;
  SimTime last_control_;
};

// VAT audio: single port, arrival-time delivery schedule.
class VatModule : public ProtocolModule {
 public:
  std::string_view name() const override { return "vat"; }
};

// Fixed-size packets at a constant rate; the delivery schedule is computed
// from the content type's rate rather than stored.
class RawCbrModule : public ProtocolModule {
 public:
  RawCbrModule(DataRate rate, Bytes packet_size) : rate_(rate), packet_size_(packet_size) {}

  std::string_view name() const override { return "raw-cbr"; }
  DataRate constant_rate() const override { return rate_; }
  SimTime RecordDeliveryOffset(const MediaPacket& packet, SimTime arrival_offset) override;
  Bytes packet_size() const { return packet_size_; }

 private:
  DataRate rate_;
  Bytes packet_size_;
  int64_t packets_seen_ = 0;
};

// Factory registry. "Simple modules can be added if necessary to handle
// different network packet formats" — new protocols register a factory under
// their name; each stream instantiates a fresh module (modules hold
// per-stream recording state).
class ProtocolRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ProtocolModule>()>;

  Status Register(const std::string& name, Factory factory);
  Result<std::unique_ptr<ProtocolModule>> Instantiate(const std::string& name) const;
  bool Contains(const std::string& name) const { return factories_.contains(name); }

  // Registry preloaded with the modules the paper's MSU supports.
  static ProtocolRegistry WithBuiltins();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_PROTO_PROTOCOL_H_
