#include "src/proto/protocol.h"

namespace calliope {

namespace {
constexpr int64_t kRtpClockHz = 90000;
constexpr SimTime kRtcpInterval = SimTime::Seconds(5);
constexpr Bytes kRtcpPacketSize = Bytes(120);
}  // namespace

SimTime RtpModule::RecordDeliveryOffset(const MediaPacket& packet, SimTime arrival_offset) {
  if (packet.flags & kPacketControl) {
    return arrival_offset;  // control messages keep their arrival spacing
  }
  if (!have_first_) {
    have_first_ = true;
    first_timestamp_ = packet.protocol_timestamp;
    first_arrival_ = arrival_offset;
    return arrival_offset;
  }
  // Media time from the sender's 90 kHz clock, anchored at the first packet:
  // this removes network-induced jitter from the stored schedule.
  const int64_t ticks =
      static_cast<int64_t>(static_cast<uint32_t>(packet.protocol_timestamp - first_timestamp_));
  const auto nanos = static_cast<int64_t>(static_cast<__int128>(ticks) * 1000000000 / kRtpClockHz);
  return first_arrival_ + SimTime(nanos);
}

void RtpModule::OnRecordPacket(const MediaPacket& packet, SimTime arrival_offset,
                               PacketSequence& interleave_out) {
  // Interleave a periodic control (RTCP-style) report into the stream so
  // replay can regenerate the control traffic.
  if (arrival_offset - last_control_ >= kRtcpInterval) {
    last_control_ = arrival_offset;
    MediaPacket control;
    control.delivery_offset = arrival_offset;
    control.size = kRtcpPacketSize;
    control.flags = kPacketControl;
    control.protocol_timestamp = packet.protocol_timestamp;
    interleave_out.push_back(control);
  }
}

ProtocolModule::PlaybackRoute RtpModule::RoutePlayback(const MediaPacket& packet) const {
  PlaybackRoute route;
  route.to_control_port = (packet.flags & kPacketControl) != 0;
  return route;
}

SimTime RawCbrModule::RecordDeliveryOffset(const MediaPacket& packet, SimTime arrival_offset) {
  // Constant-rate streams get an exact computed schedule.
  const SimTime interval = rate_.TransferTime(packet_size_);
  return interval * packets_seen_++;
}

Status ProtocolRegistry::Register(const std::string& name, Factory factory) {
  if (factories_.contains(name)) {
    return AlreadyExistsError("protocol already registered: " + name);
  }
  factories_[name] = std::move(factory);
  return OkStatus();
}

Result<std::unique_ptr<ProtocolModule>> ProtocolRegistry::Instantiate(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return NotFoundError("unknown protocol: " + name);
  }
  return it->second();
}

ProtocolRegistry ProtocolRegistry::WithBuiltins() {
  ProtocolRegistry registry;
  (void)registry.Register("rtp", [] { return std::make_unique<RtpModule>(); });
  (void)registry.Register("vat", [] { return std::make_unique<VatModule>(); });
  (void)registry.Register("raw-cbr", [] {
    return std::make_unique<RawCbrModule>(DataRate::MegabitsPerSec(1.5), Bytes::KiB(4));
  });
  return registry;
}

}  // namespace calliope
