// Seagate-Barracuda-like disk model.
//
// A request is served in phases: queue -> positioning (seek + settle +
// rotational latency) -> media transfer gated by the SCSI chain -> interrupt
// service on the host CPU. DMA traffic is trickled onto the memory bus during
// the transfer window. Requests at the current head position skip the
// positioning phase (sequential access), which is how 256 KB transfers reach
// ~70% of the media rate while random ones get ~3.6 MB/s.
//
// The queue discipline is pluggable: kFifo is the paper's configuration ("the
// MSU services the customers for each disk in a round-robin fashion,
// resulting in random seeks"); kElevator is the SCAN policy the paper
// measured at about a 6% throughput gain (§2.3.3).
#ifndef CALLIOPE_SRC_HW_DISK_H_
#define CALLIOPE_SRC_HW_DISK_H_

#include <coroutine>
#include <deque>
#include <functional>
#include <string>

#include "src/hw/cpu.h"
#include "src/hw/memory_bus.h"
#include "src/hw/params.h"
#include "src/hw/scsi_bus.h"
#include "src/sim/condition.h"
#include "src/sim/owned_coro.h"
#include "src/sim/task.h"
#include "src/util/rng.h"

namespace calliope {

enum class DiskQueueDiscipline {
  kFifo,      // serve in arrival order (random seeks under round-robin load)
  kElevator,  // SCAN: sweep the head across pending requests
};

// Verdict of the fault hook for a single request (see src/fault). A failed
// request still occupies the disk for its full service time — a real drive
// reports a medium error only after attempting the transfer.
struct DiskFault {
  DiskFault() = default;
  bool fail = false;       // complete the request with an I/O error
  SimTime extra_latency;   // added to the positioning phase (degraded drive)
};

class Disk {
 public:
  enum class Op { kRead, kWrite };

  // Consulted once per request as service begins; may be empty.
  using FaultHook = std::function<DiskFault(Op op, Bytes offset, Bytes size)>;

  Disk(Simulator& sim, Cpu& cpu, MemoryBus& memory, ScsiBus& scsi, const DiskParams& params,
       int id, uint64_t seed);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Awaitable: full service of one request. Resumes the caller after the
  // completion interrupt has been serviced. Yields true on success, false if
  // the fault hook failed the request.
  // NOTE: declared constructors (not aggregates) — see src/sim/co.h.
  auto Access(Op op, Bytes offset, Bytes size, bool bulk = false) {
    struct Awaiter {
      Awaiter(Disk* d, Op o, Bytes off, Bytes sz, bool b) : disk(d) {
        request.op = o;
        request.offset = off;
        request.size = sz;
        request.bulk = b;
      }
      Disk* disk;
      Request request;
      bool failed = false;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) {
        request.waiter = OwnedCoro(handle);
        request.failed_out = &failed;  // awaiter frame lives until resume
        disk->Enqueue(std::move(request));
      }
      bool await_resume() const noexcept { return !failed; }
    };
    return Awaiter(this, op, offset, size, bulk);
  }
  // `bulk` marks a flow-fidelity aggregate read: its host DMA trickles in
  // coarse lumps (fewer events, same bus time). Per-packet reads leave it off.
  auto Read(Bytes offset, Bytes size, bool bulk = false) {
    return Access(Op::kRead, offset, size, bulk);
  }
  auto Write(Bytes offset, Bytes size) { return Access(Op::kWrite, offset, size); }

  void set_discipline(DiskQueueDiscipline discipline) { discipline_ = discipline; }
  DiskQueueDiscipline discipline() const { return discipline_; }

  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // Observer invoked whenever the fault hook degrades or fails a request.
  // Separate from the hook so the fault injector (who decides) and the MSU
  // (who reacts, e.g. by demoting flow-mode streams to packet fidelity)
  // attach independently.
  using FaultObserver = std::function<void(const DiskFault&)>;
  void set_fault_observer(FaultObserver observer) { fault_observer_ = std::move(observer); }

  int id() const { return id_; }
  Bytes capacity() const { return params_.capacity; }
  const DiskParams& params() const { return params_; }

  int64_t completed() const { return completed_; }
  Bytes bytes_transferred() const { return bytes_transferred_; }
  size_t queue_length() const { return queue_.size(); }
  void ResetStats() {
    completed_ = 0;
    bytes_transferred_ = Bytes(0);
  }

 private:
  struct Request {
    Request() = default;

    Op op = Op::kRead;
    Bytes offset;
    Bytes size;
    bool bulk = false;  // aggregate flow read: coarse DMA trickle
    OwnedCoro waiter;
    bool* failed_out = nullptr;  // written just before the waiter resumes
  };

  void Enqueue(Request request);
  Task ServiceLoop();
  size_t PickNextIndex();
  SimTime PositioningTime(double target_frac);

  Simulator* sim_;
  Cpu* cpu_;
  MemoryBus* memory_;
  ScsiBus* scsi_;
  DiskParams params_;
  int id_;
  Rng rng_;
  DiskQueueDiscipline discipline_ = DiskQueueDiscipline::kFifo;
  FaultHook fault_hook_;
  FaultObserver fault_observer_;

  std::deque<Request> queue_;
  Condition work_available_;
  double head_frac_ = 0.0;   // current head position as a fraction of capacity
  bool sweep_inward_ = true;  // elevator direction
  int64_t completed_ = 0;
  Bytes bytes_transferred_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_HW_DISK_H_
