#include "src/hw/nic.h"

#include <utility>

namespace calliope {

Nic::Nic(Simulator& sim, Cpu& cpu, MemoryBus& memory, const NicParams& params, std::string name)
    : sim_(&sim),
      cpu_(&cpu),
      memory_(&memory),
      params_(params),
      name_(std::move(name)),
      wire_(sim, name_ + ".wire") {}

Co<bool> Nic::TrySend(Frame frame) {
  // Syscall + stack compute + driver doorbells — once per logical packet, so
  // aggregated flow chunks pay the same CPU as a back-to-back burst.
  co_await cpu_->Run(cpu_->params().udp_send_compute * frame.packet_count,
                     cpu_->params().nic_send_ops * static_cast<int>(frame.packet_count));
  // User -> mbuf copy, then the checksum read pass.
  co_await memory_->Copy(frame.size);
  if (params_.checksum_on_send) {
    co_await memory_->Read(frame.size);
  }
  if (static_cast<int>(wire_.queue_length()) >= params_.output_queue_limit) {
    ++enobufs_count_;
    co_return false;
  }
  const SimTime wire_time = params_.wire_rate.TransferTime(frame.size);
  // The NIC DMAs the mbuf out of memory while serializing. Aggregated flow
  // chunks (packet_count > 1) trickle in quarter-frame lumps — same total bus
  // time, far fewer events.
  memory_->SubmitDma(frame.size, wire_time, /*is_write=*/false,
                     frame.packet_count > 1 ? frame.size / 4 : Bytes());
  frames_sent_ += frame.packet_count;
  bytes_sent_ += frame.size;
  wire_.Submit(wire_time, [this, frame = std::move(frame)]() mutable {
    if (wire_sink_) {
      wire_sink_(std::move(frame));
    }
  });
  co_return true;
}

Co<void> Nic::SendBlocking(Frame frame) {
  for (;;) {
    // Copy the metadata; payload pointer is shared, not duplicated.
    const bool accepted = co_await TrySend(frame);
    if (accepted) {
      co_return;
    }
    co_await sim_->Delay(SimTime::Millis(1));
  }
}

void Nic::DeliverFromWire(Frame frame) { RunReceivePath(std::move(frame)); }

Task Nic::RunReceivePath(Frame frame) {
  // DMA write into an mbuf happened during wire reception; charge the bus.
  memory_->SubmitDma(frame.size, SimTime(), /*is_write=*/true,
                     frame.packet_count > 1 ? frame.size / 4 : Bytes());
  // Rx interrupt + protocol processing, once per logical packet.
  co_await cpu_->Run(cpu_->params().udp_recv_compute * frame.packet_count,
                     cpu_->params().nic_send_ops * static_cast<int>(frame.packet_count));
  // Checksum verify and copy to user space.
  co_await memory_->Read(frame.size);
  co_await memory_->Copy(frame.size);
  frames_received_ += frame.packet_count;
  if (rx_sink_) {
    rx_sink_(std::move(frame));
  }
}

}  // namespace calliope
