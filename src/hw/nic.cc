#include "src/hw/nic.h"

#include <utility>

namespace calliope {

Nic::Nic(Simulator& sim, Cpu& cpu, MemoryBus& memory, const NicParams& params, std::string name)
    : sim_(&sim),
      cpu_(&cpu),
      memory_(&memory),
      params_(params),
      name_(std::move(name)),
      wire_(sim, name_ + ".wire") {}

Co<bool> Nic::TrySend(Frame frame) {
  // Syscall + stack compute + driver doorbells.
  co_await cpu_->Run(cpu_->params().udp_send_compute, cpu_->params().nic_send_ops);
  // User -> mbuf copy, then the checksum read pass.
  co_await memory_->Copy(frame.size);
  if (params_.checksum_on_send) {
    co_await memory_->Read(frame.size);
  }
  if (static_cast<int>(wire_.queue_length()) >= params_.output_queue_limit) {
    ++enobufs_count_;
    co_return false;
  }
  const SimTime wire_time = params_.wire_rate.TransferTime(frame.size);
  // The NIC DMAs the mbuf out of memory while serializing.
  memory_->SubmitDma(frame.size, wire_time, /*is_write=*/false);
  frames_sent_ += 1;
  bytes_sent_ += frame.size;
  wire_.Submit(wire_time, [this, frame = std::move(frame)]() mutable {
    if (wire_sink_) {
      wire_sink_(std::move(frame));
    }
  });
  co_return true;
}

Co<void> Nic::SendBlocking(Frame frame) {
  for (;;) {
    // Copy the metadata; payload pointer is shared, not duplicated.
    const bool accepted = co_await TrySend(frame);
    if (accepted) {
      co_return;
    }
    co_await sim_->Delay(SimTime::Millis(1));
  }
}

void Nic::DeliverFromWire(Frame frame) { RunReceivePath(std::move(frame)); }

Task Nic::RunReceivePath(Frame frame) {
  // DMA write into an mbuf happened during wire reception; charge the bus.
  memory_->SubmitDma(frame.size, SimTime(), /*is_write=*/true);
  // Rx interrupt + protocol processing.
  co_await cpu_->Run(cpu_->params().udp_recv_compute, cpu_->params().nic_send_ops);
  // Checksum verify and copy to user space.
  co_await memory_->Read(frame.size);
  co_await memory_->Copy(frame.size);
  ++frames_received_;
  if (rx_sink_) {
    rx_sink_(std::move(frame));
  }
}

}  // namespace calliope
