#include "src/hw/cpu.h"

#include <algorithm>

namespace calliope {

Cpu::Cpu(Simulator& sim, const CpuParams& params, uint64_t seed)
    : params_(params), resource_(sim, "cpu"), rng_(seed) {}

SimTime Cpu::PortIoStall(int port_ops) {
  if (port_ops <= 0) {
    return SimTime();
  }
  SimTime mean;
  if (active_hbas_ >= 2) {
    mean = params_.port_io_two_hba;
  } else if (active_hbas_ == 1) {
    mean = params_.port_io_one_hba;
  } else {
    mean = params_.port_io_idle;
  }
  // Exponential per-op stalls capped at 4x the mean: the bug is bursty but
  // bounded (the paper saw ~20 ms worst cases, not unbounded hangs).
  const SimTime cap = mean * 4;
  SimTime total;
  for (int i = 0; i < port_ops; ++i) {
    auto stall = SimTime::Nanos(static_cast<int64_t>(
        rng_.NextExponential(static_cast<double>(mean.nanos()))));
    total += std::min(stall, cap);
  }
  return total;
}

}  // namespace calliope
