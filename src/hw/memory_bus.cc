#include "src/hw/memory_bus.h"

#include <algorithm>

namespace calliope {

MemoryBus::MemoryBus(Simulator& sim, const MemoryBusParams& params, Resource& shared)
    : sim_(&sim), params_(params), bus_(&shared) {}

void MemoryBus::SubmitDma(Bytes size, SimTime window, bool is_write, Bytes chunk_override) {
  const DataRate rate = is_write ? params_.write_rate : params_.read_rate;
  const Bytes chunk = std::max(params_.dma_chunk, chunk_override);
  const int64_t chunks = std::max<int64_t>(1, (size.count() + chunk.count() - 1) / chunk.count());
  const SimTime spacing = window / chunks;
  Bytes remaining = size;
  for (int64_t i = 0; i < chunks; ++i) {
    const Bytes this_chunk = std::min(chunk, remaining);
    remaining -= this_chunk;
    const SimTime busy = OpTime(this_chunk, rate);
    sim_->ScheduleAfter(spacing * i, [this, busy] { bus_->Submit(busy, [] {}); });
  }
}

}  // namespace calliope
