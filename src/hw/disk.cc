#include "src/hw/disk.h"

#include <algorithm>
#include <cmath>

namespace calliope {

Disk::Disk(Simulator& sim, Cpu& cpu, MemoryBus& memory, ScsiBus& scsi, const DiskParams& params,
           int id, uint64_t seed)
    : sim_(&sim),
      cpu_(&cpu),
      memory_(&memory),
      scsi_(&scsi),
      params_(params),
      id_(id),
      rng_(seed),
      work_available_(sim) {
  ServiceLoop();
}

void Disk::Enqueue(Request request) {
  queue_.push_back(std::move(request));
  work_available_.NotifyAll();
}

SimTime Disk::PositioningTime(double target_frac) {
  const double distance = std::abs(target_frac - head_frac_);
  SimTime positioning = params_.controller_overhead;
  if (distance > 1e-9) {
    // Seek: settle + base + sqrt curve, then wait out rotational latency.
    positioning += params_.seek_settle + params_.seek_base +
                   SimTime(static_cast<int64_t>(
                       static_cast<double>(params_.seek_sqrt_coeff.nanos()) * std::sqrt(distance)));
    positioning += SimTime(static_cast<int64_t>(
        rng_.NextDouble() * static_cast<double>(params_.rotation_period.nanos())));
  }
  return positioning;
}

size_t Disk::PickNextIndex() {
  if (discipline_ == DiskQueueDiscipline::kFifo || queue_.size() == 1) {
    return 0;
  }
  // Elevator (SCAN): continue in the current direction; reverse at the edge.
  for (int attempt = 0; attempt < 2; ++attempt) {
    size_t best = queue_.size();
    double best_distance = 2.0;
    for (size_t i = 0; i < queue_.size(); ++i) {
      const double frac =
          static_cast<double>(queue_[i].offset.count()) / static_cast<double>(params_.capacity.count());
      const double delta = frac - head_frac_;
      const bool ahead = sweep_inward_ ? delta >= 0 : delta <= 0;
      if (ahead && std::abs(delta) < best_distance) {
        best_distance = std::abs(delta);
        best = i;
      }
    }
    if (best < queue_.size()) {
      return best;
    }
    sweep_inward_ = !sweep_inward_;
  }
  return 0;  // unreachable with a non-empty queue, but keep it safe
}

Task Disk::ServiceLoop() {
  for (;;) {
    while (queue_.empty()) {
      co_await work_available_.Wait();
    }
    const size_t index = PickNextIndex();
    Request request = std::move(queue_[index]);
    queue_.erase(queue_.begin() + static_cast<std::deque<Request>::difference_type>(index));

    scsi_->RequestStarted();

    DiskFault fault;
    if (fault_hook_) {
      fault = fault_hook_(request.op, request.offset, request.size);
      if (fault_observer_ && (fault.fail || fault.extra_latency > SimTime())) {
        fault_observer_(fault);
      }
    }

    const double target_frac =
        static_cast<double>(request.offset.count()) / static_cast<double>(params_.capacity.count());
    co_await sim_->Delay(PositioningTime(target_frac));
    if (fault.extra_latency > SimTime()) {
      co_await sim_->Delay(fault.extra_latency);
    }

    // Media transfer gated by the SCSI chain: the disk streams at its media
    // rate but cannot finish before its share of the chain is available.
    const SimTime media_time = params_.media_rate.TransferTime(request.size);
    const SimTime start = sim_->Now();
    // DMA between host memory and the HBA trickles across the transfer window
    // (a read DMA *writes* host memory).
    memory_->SubmitDma(request.size, media_time, /*is_write=*/request.op == Op::kRead,
                       request.bulk ? request.size / 4 : Bytes());
    co_await scsi_->Transfer(request.size);
    const SimTime elapsed = sim_->Now() - start;
    if (elapsed < media_time) {
      co_await sim_->Delay(media_time - elapsed);
    }

    head_frac_ = std::min(
        1.0, target_frac + static_cast<double>(request.size.count()) /
                               static_cast<double>(params_.capacity.count()));

    // Completion interrupt: SCSI mailbox port I/O on the host CPU. This is
    // where the two-HBA stall bug bites.
    co_await cpu_->Run(cpu_->params().disk_interrupt_compute, cpu_->params().disk_interrupt_ops);

    scsi_->RequestFinished();
    ++completed_;
    bytes_transferred_ += request.size;
    if (fault.fail && request.failed_out != nullptr) {
      *request.failed_out = true;
    }
    request.waiter.Resume();
  }
}

}  // namespace calliope
