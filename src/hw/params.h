// Calibration constants for the simulated 1995 testbed.
//
// The paper's MSU host is a 66 MHz Pentium (Micron) with: Buslogic EISA
// fast-differential SCSI HBAs, 2 GB Seagate Barracuda disks, 32 MB RAM, and a
// DEC DEFPA PCI FDDI interface, running FreeBSD 2.0.5. Parameters below are
// chosen so the simple baseline programs of paper §3.1 reproduce Table 1:
//
//  * random 256 KB reads from one idle disk sustain ~3.6 MB/s, which is ~70%
//    of the sequential media rate (paper §2.3.3);
//  * ttcp-style 4 KB UDP sends reach ~8.5 MB/s with no disk activity;
//  * memory read/write/copy bandwidths are 53/25/18 MB/s and the diskless
//    write+send pipeline reaches ~6.3 MB/s of a theoretical 7.5 MB/s
//    (instruction-fetch interference, modeled as bus efficiency);
//  * port-mapped I/O instructions stall when SCSI HBAs are active: ~4 us
//    sequences when idle, occasionally ~1 ms with one HBA, often ~20 ms with
//    two HBAs (the motherboard bug of paper §3.1).
//
// "MB/s" here means 10^6 bytes/sec, matching the paper's footnote.
#ifndef CALLIOPE_SRC_HW_PARAMS_H_
#define CALLIOPE_SRC_HW_PARAMS_H_

#include <cstdint>
#include <vector>

#include "src/util/units.h"

namespace calliope {

struct DiskParams {
  Bytes capacity = Bytes::GiB(2);
  // Media (sequential) transfer rate. 256 KB transfers at 70% of this give
  // the measured 3.6 MB/s random-read throughput.
  DataRate media_rate = DataRate::MegabytesPerSec(5.15);
  // Seek time = settle + a + b*sqrt(distance_fraction); zero for distance 0.
  SimTime seek_settle = SimTime::Micros(8200);
  SimTime seek_base = SimTime::Micros(1500);
  SimTime seek_sqrt_coeff = SimTime::Micros(13000);  // multiplied by sqrt(d), d in [0,1]
  // 7200 rpm => 8.33 ms per revolution; rotational latency ~ U(0, rev).
  SimTime rotation_period = SimTime::Micros(8333);
  // Fixed controller/command overhead per request.
  SimTime controller_overhead = SimTime::Micros(700);
};

struct HbaParams {
  // Effective SCSI-chain transfer bandwidth through the EISA HBA. Two disks
  // on one chain saturate it (2 x 2.8 MB/s in Table 1).
  DataRate bus_rate = DataRate::MegabytesPerSec(5.8);
};

struct CpuParams {
  // Port-mapped I/O stall per in/out operation, by number of *other* active
  // HBAs (the bug needs concurrent HBA activity to manifest badly).
  // Values are means of exponential draws, capped at 4x the mean.
  SimTime port_io_idle = SimTime::Nanos(1500);      // ~4 us for a short sequence
  SimTime port_io_one_hba = SimTime::Micros(25);    // sequences occasionally ~1 ms
  SimTime port_io_two_hba = SimTime::Micros(150);   // sequences often ~20 ms
  // Port operations performed by each interrupt/driver path.
  int disk_interrupt_ops = 55;   // SCSI mailbox + status: dozens of port touches
  int nic_send_ops = 4;          // DEFPA descriptor ring doorbells
  int timer_read_ops = 3;        // reading the 8254 timer (the clock-drift symptom)
  // Pure compute portions (no port I/O, no memory-bus traffic).
  SimTime disk_interrupt_compute = SimTime::Micros(180);
  SimTime udp_send_compute = SimTime::Micros(20);  // syscall + ip/udp + driver
  SimTime udp_recv_compute = SimTime::Micros(45);
  // tsleep/wakeup + process switch when a paced sender's timer fires; the
  // timer-read port I/O (timer_read_ops) stalls on top when HBAs are active.
  SimTime timer_wakeup_compute = SimTime::Micros(40);
  // Per-packet MSU network-process work that does not shed under load:
  // delivery-schedule lookup, buffer bookkeeping, select() fd scans. This is
  // the overhead that makes the MSU deliver ~90% of the raw ttcp baseline
  // (paper section 3.2.1).
  SimTime msu_packet_compute = SimTime::Micros(115);
  // Extra per-packet cost when the delivery schedule is *stored* rather than
  // computed (variable-rate protocols): each record's timing entry is parsed
  // and compared, where constant-rate pacing is one multiply. Together with
  // the small packets this is the paper's "four times as much processing
  // overhead" for the NV workload (section 3.2.2).
  SimTime msu_stored_schedule_compute = SimTime::Micros(230);
};

struct MemoryBusParams {
  DataRate read_rate = DataRate::MegabytesPerSec(53);
  DataRate write_rate = DataRate::MegabytesPerSec(25);
  DataRate copy_rate = DataRate::MegabytesPerSec(18);
  // Fraction of nominal bandwidth actually available to the data path; the
  // rest is instruction fetches (paper: 7.5 MB/s theoretical -> 6.3 observed).
  double efficiency = 0.84;
  // DMA engines trickle onto the bus in chunks of this size.
  Bytes dma_chunk = Bytes::KiB(8);
};

struct NicParams {
  DataRate wire_rate = DataRate::MegabitsPerSec(100);  // FDDI
  int output_queue_limit = 50;                          // ifq before ENOBUFS
  Bytes max_frame = Bytes(4352);                        // FDDI MTU
  bool checksum_on_send = true;                         // UDP checksum read pass
};

// The FreeBSD 2.0.5 system clock tick (paper §2.2.1: "FreeBSD timers have
// only 10 ms granularity, so delivery times are only approximate").
inline constexpr SimTime kTimerGranularity = SimTime::Millis(10);

struct MachineParams {
  CpuParams cpu;
  MemoryBusParams memory;
  DiskParams disk;
  HbaParams hba;
  NicParams fddi;
  NicParams ethernet{
      .wire_rate = DataRate::MegabitsPerSec(10),
      .output_queue_limit = 50,
      .max_frame = Bytes(1500),
      .checksum_on_send = true,
  };
  // disks_per_hba[i] = number of disks on SCSI chain i.
  // Default MSU build: two disks on one HBA (the Graph 1/2 configuration).
  std::vector<int> disks_per_hba{2};
  uint64_t rng_seed = 1996;
};

// The paper's measurement host.
inline MachineParams MicronP66() { return MachineParams{}; }

}  // namespace calliope

#endif  // CALLIOPE_SRC_HW_PARAMS_H_
