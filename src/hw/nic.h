// Network interface model (FDDI for the delivery network, Ethernet for the
// intra-server LAN).
//
// The send path reproduces the paper's §3.2.3 data-path accounting for one
// UDP datagram:
//   1. syscall + protocol-stack compute and driver doorbell port I/O (CPU);
//   2. user-space -> kernel-mbuf copy (memory bus, 18 MB/s class);
//   3. UDP checksum read pass (memory bus, 53 MB/s class);
//   4. output-queue admission — full queue yields ENOBUFS, as FreeBSD does;
//   5. wire serialization with a concurrent DMA read of the mbuf.
// The receive path mirrors it (DMA write, rx interrupt, checksum, copy out).
#ifndef CALLIOPE_SRC_HW_NIC_H_
#define CALLIOPE_SRC_HW_NIC_H_

#include <functional>
#include <memory>
#include <string>

#include "src/hw/cpu.h"
#include "src/hw/memory_bus.h"
#include "src/hw/params.h"
#include "src/sim/co.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"

namespace calliope {

// One frame on the wire. `payload` is opaque to the hardware layer; the net
// substrate uses it to carry datagram contents end to end.
// Non-aggregate (declared constructors): safe as a coroutine parameter.
struct Frame {
  Frame() = default;
  explicit Frame(Bytes frame_size) : size(frame_size) {}

  Bytes size;
  std::shared_ptr<void> payload;
  // Flow-mode aggregation: one Frame standing in for `packet_count` logical
  // datagrams sent back to back. The send path charges per-packet CPU and
  // port I/O `packet_count` times but makes a single copy/checksum/DMA/wire
  // reservation over the total bytes — an aggregate "deliver N bytes" grant.
  int64_t packet_count = 1;
};

class Nic {
 public:
  Nic(Simulator& sim, Cpu& cpu, MemoryBus& memory, const NicParams& params, std::string name);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  // Sends one datagram. Returns false on ENOBUFS (output queue full); the
  // CPU and memory work has been spent either way, like a real kernel.
  Co<bool> TrySend(Frame frame);

  // ttcp semantics: "Ttcp then sleeps briefly and tries to send the packet
  // again" — retries every 1 ms until the queue drains.
  Co<void> SendBlocking(Frame frame);

  // Wire-out hook: invoked when a frame finishes serializing. The network
  // fabric (src/net) attaches here; standalone benchmarks read stats instead.
  void set_wire_sink(std::function<void(Frame)> sink) { wire_sink_ = std::move(sink); }

  // Entry point for frames arriving from the fabric. Runs the host receive
  // path, then hands the frame to the rx sink.
  void DeliverFromWire(Frame frame);
  void set_rx_sink(std::function<void(Frame)> sink) { rx_sink_ = std::move(sink); }

  const std::string& name() const { return name_; }
  const NicParams& params() const { return params_; }
  int64_t frames_sent() const { return frames_sent_; }
  Bytes bytes_sent() const { return bytes_sent_; }
  int64_t enobufs_count() const { return enobufs_count_; }
  int64_t frames_received() const { return frames_received_; }
  void ResetStats() {
    frames_sent_ = 0;
    bytes_sent_ = Bytes(0);
    enobufs_count_ = 0;
    frames_received_ = 0;
  }

 private:
  Task RunReceivePath(Frame frame);

  Simulator* sim_;
  Cpu* cpu_;
  MemoryBus* memory_;
  NicParams params_;
  std::string name_;
  Resource wire_;
  std::function<void(Frame)> wire_sink_;
  std::function<void(Frame)> rx_sink_;
  int64_t frames_sent_ = 0;
  Bytes bytes_sent_;
  int64_t enobufs_count_ = 0;
  int64_t frames_received_ = 0;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_HW_NIC_H_
