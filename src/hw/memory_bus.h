// The host memory bus: a serially-shared resource with distinct read, write
// and copy bandwidths (paper §3.2.3: 53 / 25 / 18 MB/s on the Micron P66).
//
// CPU-driven operations (user->kernel copies, checksum reads) occupy both the
// CPU's attention and the bus; we account them here and callers sequence them
// on the data path. DMA engines (SCSI HBA writes, NIC reads) trickle their
// transfers onto the bus in small chunks spread across the device transfer
// window, so a 51 ms disk media transfer occupies ~20% of the bus rather than
// blocking it solid.
//
// The `efficiency` factor models instruction-fetch interference: the paper's
// diskless pipeline test moved 6.3 MB/s of a theoretical 7.5 MB/s.
//
// The bus shares one serial Resource with the CPU: a 66 MHz Pentium is
// stalled while it copies or checksums, and DMA bursts arbitrate against it,
// so compute, memory operations and DMA all serialize — which is exactly how
// the paper's 7.5 MB/s theoretical pipeline number is derived.
#ifndef CALLIOPE_SRC_HW_MEMORY_BUS_H_
#define CALLIOPE_SRC_HW_MEMORY_BUS_H_

#include "src/hw/params.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace calliope {

class MemoryBus {
 public:
  // `shared` is the CPU's execution resource (see Machine); all memory
  // traffic serializes with compute on it.
  MemoryBus(Simulator& sim, const MemoryBusParams& params, Resource& shared);

  // Awaitable CPU-side operations: occupy the bus for size/rate/efficiency.
  auto Read(Bytes size) { return bus_->Use(OpTime(size, params_.read_rate)); }
  auto Write(Bytes size) { return bus_->Use(OpTime(size, params_.write_rate)); }
  auto Copy(Bytes size) { return bus_->Use(OpTime(size, params_.copy_rate)); }

  // Fire-and-forget DMA: issues size/dma_chunk bus operations evenly spread
  // over `window` (the device's transfer duration), charged at the read or
  // write rate. Completion of the bus traffic is not observable — the device
  // model owns the transfer-complete event.
  //
  // `chunk_override` (0 = use params().dma_chunk) coarsens the trickle for
  // aggregate flow-fidelity transfers: the bus occupancy total is identical,
  // but a page-sized transfer costs a handful of events instead of dozens.
  // Per-packet paths never pass it, so their interleaving is untouched.
  void SubmitDma(Bytes size, SimTime window, bool is_write, Bytes chunk_override = Bytes());

  SimTime OpTime(Bytes size, DataRate rate) const {
    const SimTime nominal = rate.TransferTime(size);
    return SimTime(static_cast<int64_t>(static_cast<double>(nominal.nanos()) / params_.efficiency));
  }

  double Utilization() const { return bus_->Utilization(); }
  const MemoryBusParams& params() const { return params_; }

 private:
  Simulator* sim_;
  MemoryBusParams params_;
  Resource* bus_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_HW_MEMORY_BUS_H_
