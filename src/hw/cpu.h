// The MSU host CPU: a single FIFO execution resource plus the motherboard's
// port-I/O stall bug.
//
// Paper §3.1: "'in' and 'out' instructions ... could take a very long time
// when two HBAs were running. Specifically, the sequence of instructions
// needed to read the hardware timer took approximately 4 microseconds with no
// disk activity; it occasionally took a millisecond with one HBA running, and
// often took 20 milliseconds with two HBAs running."
//
// Every driver path (SCSI interrupt service, NIC doorbells, timer reads)
// performs port operations; their stall time scales with the number of
// *concurrently active* SCSI HBAs, which is what collapses FDDI throughput in
// the two-HBA rows of Table 1.
#ifndef CALLIOPE_SRC_HW_CPU_H_
#define CALLIOPE_SRC_HW_CPU_H_

#include "src/hw/params.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace calliope {

class Cpu {
 public:
  Cpu(Simulator& sim, const CpuParams& params, uint64_t seed);

  // Awaitable: occupies the CPU for `compute` plus the stall time of
  // `port_ops` port-mapped I/O operations at the current HBA activity level.
  auto Run(SimTime compute, int port_ops) {
    return resource_.Use(compute + PortIoStall(port_ops));
  }

  // Callback form (for device completion paths).
  void Submit(SimTime compute, int port_ops, UniqueFunction<void()> done) {
    resource_.Submit(compute + PortIoStall(port_ops), std::move(done));
  }

  // Draws the total stall for a sequence of port operations.
  SimTime PortIoStall(int port_ops);

  // HBAs report activity transitions so the stall model can see them.
  void HbaBecameActive() { ++active_hbas_; }
  void HbaBecameIdle() { --active_hbas_; }
  int active_hbas() const { return active_hbas_; }

  double Utilization() const { return resource_.Utilization(); }
  SimTime BusyTime() const { return resource_.BusyTime(); }
  void ResetStats() { resource_.ResetStats(); }
  const CpuParams& params() const { return params_; }
  // The underlying execution resource; the memory bus serializes onto it.
  Resource& resource() { return resource_; }

 private:
  CpuParams params_;
  Resource resource_;
  Rng rng_;
  int active_hbas_ = 0;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_HW_CPU_H_
