// Machine: one simulated MSU/client/Coordinator host — CPU, memory bus, SCSI
// chains with disks, an FDDI interface to the delivery network and an
// Ethernet interface to the intra-server LAN, plus coarse timers.
#ifndef CALLIOPE_SRC_HW_MACHINE_H_
#define CALLIOPE_SRC_HW_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/disk.h"
#include "src/hw/memory_bus.h"
#include "src/hw/nic.h"
#include "src/hw/params.h"
#include "src/hw/scsi_bus.h"
#include "src/hw/timer.h"

namespace calliope {

class Machine {
 public:
  Machine(Simulator& sim, const MachineParams& params, std::string name);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Simulator& sim() { return *sim_; }
  Cpu& cpu() { return cpu_; }
  MemoryBus& memory() { return memory_; }
  Nic& fddi() { return fddi_; }
  Nic& ethernet() { return ethernet_; }
  CoarseTimer& timer() { return timer_; }

  size_t disk_count() const { return disks_.size(); }
  Disk& disk(size_t i) { return *disks_.at(i); }
  size_t hba_count() const { return hbas_.size(); }
  ScsiBus& hba(size_t i) { return *hbas_.at(i); }

  const std::string& name() const { return name_; }
  const MachineParams& params() const { return params_; }

 private:
  Simulator* sim_;
  MachineParams params_;
  std::string name_;
  Cpu cpu_;
  MemoryBus memory_;
  std::vector<std::unique_ptr<ScsiBus>> hbas_;
  std::vector<std::unique_ptr<Disk>> disks_;
  Nic fddi_;
  Nic ethernet_;
  CoarseTimer timer_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_HW_MACHINE_H_
