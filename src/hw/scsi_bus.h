// One SCSI host bus adaptor (HBA) chain.
//
// The chain serializes data transfers of the disks attached to it at the
// HBA's effective bandwidth (Table 1: two Barracudas saturate one Buslogic
// EISA HBA at ~5.6-5.8 MB/s). The HBA also reports its activity to the CPU
// model, because concurrently-active HBAs trigger the port-I/O stall bug.
#ifndef CALLIOPE_SRC_HW_SCSI_BUS_H_
#define CALLIOPE_SRC_HW_SCSI_BUS_H_

#include <cassert>
#include <string>

#include "src/hw/cpu.h"
#include "src/hw/params.h"
#include "src/sim/resource.h"

namespace calliope {

class ScsiBus {
 public:
  ScsiBus(Simulator& sim, Cpu& cpu, const HbaParams& params, int id)
      : params_(params), cpu_(&cpu), id_(id), transfer_(sim, "hba" + std::to_string(id)) {}

  ScsiBus(const ScsiBus&) = delete;
  ScsiBus& operator=(const ScsiBus&) = delete;

  // Disks bracket each in-flight request so the CPU sees HBA activity.
  void RequestStarted() {
    if (in_flight_++ == 0) {
      cpu_->HbaBecameActive();
    }
  }
  void RequestFinished() {
    assert(in_flight_ > 0);
    if (--in_flight_ == 0) {
      cpu_->HbaBecameIdle();
    }
  }

  // Awaitable: stream `size` across the chain.
  auto Transfer(Bytes size) { return transfer_.Use(params_.bus_rate.TransferTime(size)); }

  int id() const { return id_; }
  int in_flight() const { return in_flight_; }
  double Utilization() const { return transfer_.Utilization(); }
  const HbaParams& params() const { return params_; }

 private:
  HbaParams params_;
  Cpu* cpu_;
  int id_;
  int in_flight_ = 0;
  Resource transfer_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_HW_SCSI_BUS_H_
