#include "src/hw/machine.h"

#include <utility>

#include "src/util/rng.h"

namespace calliope {

Machine::Machine(Simulator& sim, const MachineParams& params, std::string name)
    : sim_(&sim),
      params_(params),
      name_(std::move(name)),
      cpu_(sim, params.cpu, params.rng_seed ^ 0x637075ULL),
      memory_(sim, params.memory, cpu_.resource()),
      fddi_(sim, cpu_, memory_, params.fddi, name_ + ".fddi"),
      ethernet_(sim, cpu_, memory_, params.ethernet, name_ + ".en"),
      timer_(sim) {
  Rng seeder(params.rng_seed);
  int disk_id = 0;
  for (size_t h = 0; h < params.disks_per_hba.size(); ++h) {
    hbas_.push_back(std::make_unique<ScsiBus>(sim, cpu_, params.hba, static_cast<int>(h)));
    for (int d = 0; d < params.disks_per_hba[h]; ++d) {
      disks_.push_back(std::make_unique<Disk>(sim, cpu_, memory_, *hbas_.back(), params.disk,
                                              disk_id++, seeder.NextU64()));
    }
  }
}

}  // namespace calliope
