// Coarse software timers, FreeBSD-2.x style.
//
// Paper §2.2.1: "Calliope does not use a real-time operating system and
// FreeBSD timers have only 10 ms granularity, so delivery times are only
// approximate." A process sleeping until T actually wakes at the first timer
// tick at or after T. This quantization is the floor under the lateness
// distributions of Graphs 1 and 2.
#ifndef CALLIOPE_SRC_HW_TIMER_H_
#define CALLIOPE_SRC_HW_TIMER_H_

#include "src/hw/params.h"
#include "src/sim/simulator.h"

namespace calliope {

class CoarseTimer {
 public:
  CoarseTimer(Simulator& sim, SimTime granularity = kTimerGranularity)
      : sim_(&sim), granularity_(granularity) {}

  // First tick at or after `t`.
  SimTime NextTickAtOrAfter(SimTime t) const {
    const int64_t g = granularity_.nanos();
    const int64_t ticks = (t.nanos() + g - 1) / g;
    return SimTime(ticks * g);
  }

  // Awaitable: sleep until the first tick at or after `deadline`; resumes
  // immediately when that tick has already passed (the caller's deadline is
  // due — there is nothing left to wait for).
  auto WaitUntil(SimTime deadline) {
    const SimTime wake = NextTickAtOrAfter(deadline);
    const SimTime delay = wake > sim_->Now() ? wake - sim_->Now() : SimTime();
    return sim_->Delay(delay);
  }

  SimTime granularity() const { return granularity_; }

 private:
  Simulator* sim_;
  SimTime granularity_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_HW_TIMER_H_
