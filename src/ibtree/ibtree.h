// The Integrated B-tree (IB-tree) of paper §2.2.1.
//
// Calliope stores a recording's delivery schedule interleaved with its data
// in a single file laid out as a primary B-tree keyed by delivery time. A
// sequential scan of the leaf (data) pages yields packets in delivery order;
// seeks traverse the search tree.
//
// The "integrated" variant embeds internal pages inside data pages: "When an
// internal page fills up, it is copied into the current data page instead of
// being written separately on disk." Data pages are 256 KB; internal pages
// are 28 KB holding up to 1024 keys, so internal pages appear in ~0.1% of
// data pages and cost no extra disk transfer on write and no appreciable
// bandwidth on sequential read.
//
// The topmost level of the search tree (at most 1024 entries) lives in the
// file's metadata, which the MSU file system caches entirely in memory.
//
// Bulk payload bytes are accounted logically (the simulated disks carry
// timing, not data); record tables and internal pages serialize to real
// bytes with checksums, and the seek path decodes them.
#ifndef CALLIOPE_SRC_IBTREE_IBTREE_H_
#define CALLIOPE_SRC_IBTREE_IBTREE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/media/packet.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace calliope {

inline constexpr Bytes kDataPageSize = Bytes::KiB(256);
inline constexpr Bytes kInternalPageSize = Bytes::KiB(28);
inline constexpr size_t kMaxInternalEntries = 1024;
// Per-record header in the page's record table: delivery offset (8),
// size (4), flags (4), protocol timestamp (4), reserved (4).
inline constexpr Bytes kRecordOverhead = Bytes(24);
inline constexpr Bytes kDataPageHeaderSize = Bytes(64);

// One key -> child reference in the search tree. A child is either a data
// page (leaf level) or an internal page embedded in some data page.
struct InternalEntry {
  int64_t first_offset_ns;  // smallest delivery offset under this child
  int64_t child_page;       // data page index the child lives in
};

// Serialized internal page: header + entries + checksum, exactly
// kInternalPageSize when written to its data page.
std::vector<std::byte> EncodeInternalPage(const std::vector<InternalEntry>& entries);
Result<std::vector<InternalEntry>> DecodeInternalPage(const std::vector<std::byte>& bytes);

// Serialized record table of a data page (the on-disk header region):
// per-record delivery offset, size, flags and protocol timestamp, with a
// checksum. The playback path verifies it when a page is read.
std::vector<std::byte> EncodeRecordTable(const std::vector<MediaPacket>& records);
Result<std::vector<MediaPacket>> DecodeRecordTable(const std::vector<std::byte>& bytes);

struct DataPage {
  int64_t index = 0;
  std::vector<MediaPacket> records;
  // Serialized internal page embedded in this data page, if any.
  std::optional<std::vector<std::byte>> embedded_internal;
  // Which tree level the embedded page belongs to (0 = leaf directory).
  int embedded_level = -1;

  Bytes payload_bytes() const;
  Bytes fill_bytes() const;  // header + record table + payload + embedded
  SimTime first_offset() const {
    return records.empty() ? SimTime() : records.front().delivery_offset;
  }
  SimTime last_offset() const {
    return records.empty() ? SimTime() : records.back().delivery_offset;
  }
};

// An immutable, fully built IB-tree file image.
class IbTreeFile {
 public:
  struct SeekResult {
    size_t page_index;    // data page holding the target record
    size_t record_index;  // first record with delivery_offset >= target
    // Data pages that had to be read to walk the tree (excluding the leaf);
    // the MSU charges one disk transfer per entry.
    std::vector<int64_t> internal_pages_read;
  };

  size_t page_count() const { return pages_.size(); }
  const DataPage& page(size_t i) const { return pages_.at(i); }
  const std::vector<InternalEntry>& root() const { return root_; }
  int height() const { return height_; }
  SimTime duration() const;
  Bytes total_payload() const;
  int64_t record_count() const;
  size_t internal_page_count() const { return internal_page_count_; }
  // Fraction of data pages carrying an embedded internal page (paper: ~0.1%).
  double internal_page_fraction() const;

  // Finds the page/record for the first packet at or after `target`,
  // decoding embedded internal pages along the way. Fails with kDataLoss on
  // checksum mismatch and kNotFound past end of file.
  Result<SeekResult> Seek(SimTime target) const;

 private:
  friend class IbTreeBuilder;
  std::vector<DataPage> pages_;
  std::vector<InternalEntry> root_;
  int height_ = 1;
  size_t internal_page_count_ = 0;
};

// Streaming builder: packets must arrive in non-decreasing delivery order
// (they do — recording appends in arrival order).
class IbTreeBuilder {
 public:
  IbTreeBuilder() = default;

  Status Add(const MediaPacket& packet);
  IbTreeFile Finish();

  // Streaming recording support: pages already closed can be written behind
  // while later packets are still arriving.
  size_t pages_closed() const { return file_.pages_.size(); }
  const DataPage& closed_page(size_t i) const { return file_.pages_.at(i); }

 private:
  void CloseDataPage();
  // Adds a directory entry at `level`, spilling filled internal pages into
  // the current data page.
  void AddEntry(int level, InternalEntry entry);

  IbTreeFile file_;
  DataPage current_;
  bool current_dirty_ = false;
  SimTime last_offset_;
  std::vector<std::vector<InternalEntry>> levels_;  // levels_[0] = leaf directory
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_IBTREE_IBTREE_H_
