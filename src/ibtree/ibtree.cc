#include "src/ibtree/ibtree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace calliope {

namespace {

constexpr uint32_t kInternalMagic = 0x1B7EE000;

uint64_t Fnv1a(const std::byte* data, size_t len) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    hash ^= static_cast<uint64_t>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

template <typename T>
void PutRaw(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
bool GetRaw(const std::vector<std::byte>& in, size_t& pos, T& value) {
  if (pos + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(&value, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

std::vector<std::byte> EncodeInternalPage(const std::vector<InternalEntry>& entries) {
  assert(entries.size() <= kMaxInternalEntries);
  std::vector<std::byte> out;
  out.reserve(static_cast<size_t>(kInternalPageSize.count()));
  PutRaw(out, kInternalMagic);
  PutRaw(out, static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    PutRaw(out, entry.first_offset_ns);
    PutRaw(out, entry.child_page);
  }
  const uint64_t checksum = Fnv1a(out.data(), out.size());
  PutRaw(out, checksum);
  out.resize(static_cast<size_t>(kInternalPageSize.count()));  // zero padding
  return out;
}

Result<std::vector<InternalEntry>> DecodeInternalPage(const std::vector<std::byte>& bytes) {
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!GetRaw(bytes, pos, magic) || magic != kInternalMagic) {
    return DataLossError("internal page: bad magic");
  }
  if (!GetRaw(bytes, pos, count) || count > kMaxInternalEntries) {
    return DataLossError("internal page: bad entry count");
  }
  std::vector<InternalEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    InternalEntry entry{};
    if (!GetRaw(bytes, pos, entry.first_offset_ns) || !GetRaw(bytes, pos, entry.child_page)) {
      return DataLossError("internal page: truncated entries");
    }
    entries.push_back(entry);
  }
  const uint64_t expected = Fnv1a(bytes.data(), pos);
  uint64_t stored = 0;
  if (!GetRaw(bytes, pos, stored) || stored != expected) {
    return DataLossError("internal page: checksum mismatch");
  }
  return entries;
}

namespace {
constexpr uint32_t kRecordTableMagic = 0x1B7EE0D1;
}  // namespace

std::vector<std::byte> EncodeRecordTable(const std::vector<MediaPacket>& records) {
  std::vector<std::byte> out;
  out.reserve(records.size() * static_cast<size_t>(kRecordOverhead.count()) + 16);
  PutRaw(out, kRecordTableMagic);
  PutRaw(out, static_cast<uint32_t>(records.size()));
  for (const MediaPacket& record : records) {
    PutRaw(out, record.delivery_offset.nanos());
    PutRaw(out, static_cast<uint32_t>(record.size.count()));
    PutRaw(out, record.flags);
    PutRaw(out, record.protocol_timestamp);
  }
  const uint64_t checksum = Fnv1a(out.data(), out.size());
  PutRaw(out, checksum);
  return out;
}

Result<std::vector<MediaPacket>> DecodeRecordTable(const std::vector<std::byte>& bytes) {
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!GetRaw(bytes, pos, magic) || magic != kRecordTableMagic) {
    return DataLossError("record table: bad magic");
  }
  if (!GetRaw(bytes, pos, count)) {
    return DataLossError("record table: truncated header");
  }
  std::vector<MediaPacket> records;
  records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t offset_ns = 0;
    uint32_t size = 0;
    MediaPacket record;
    if (!GetRaw(bytes, pos, offset_ns) || !GetRaw(bytes, pos, size) ||
        !GetRaw(bytes, pos, record.flags) || !GetRaw(bytes, pos, record.protocol_timestamp)) {
      return DataLossError("record table: truncated entries");
    }
    record.delivery_offset = SimTime(offset_ns);
    record.size = Bytes(size);
    records.push_back(record);
  }
  const uint64_t expected = Fnv1a(bytes.data(), pos);
  uint64_t stored = 0;
  if (!GetRaw(bytes, pos, stored) || stored != expected) {
    return DataLossError("record table: checksum mismatch");
  }
  return records;
}

Bytes DataPage::payload_bytes() const {
  Bytes total;
  for (const auto& record : records) {
    total += record.size;
  }
  return total;
}

Bytes DataPage::fill_bytes() const {
  Bytes fill = kDataPageHeaderSize + payload_bytes() +
               kRecordOverhead * static_cast<int64_t>(records.size());
  if (embedded_internal.has_value()) {
    fill += kInternalPageSize;
  }
  return fill;
}

SimTime IbTreeFile::duration() const {
  if (pages_.empty()) {
    return SimTime();
  }
  // Trailer pages hold no records; scan back for the last page with records.
  for (auto it = pages_.rbegin(); it != pages_.rend(); ++it) {
    if (!it->records.empty()) {
      return it->last_offset();
    }
  }
  return SimTime();
}

Bytes IbTreeFile::total_payload() const {
  Bytes total;
  for (const auto& page : pages_) {
    total += page.payload_bytes();
  }
  return total;
}

int64_t IbTreeFile::record_count() const {
  int64_t count = 0;
  for (const auto& page : pages_) {
    count += static_cast<int64_t>(page.records.size());
  }
  return count;
}

double IbTreeFile::internal_page_fraction() const {
  if (pages_.empty()) {
    return 0.0;
  }
  size_t with_internal = 0;
  for (const auto& page : pages_) {
    if (page.embedded_internal.has_value()) {
      ++with_internal;
    }
  }
  return static_cast<double>(with_internal) / static_cast<double>(pages_.size());
}

Result<IbTreeFile::SeekResult> IbTreeFile::Seek(SimTime target) const {
  if (pages_.empty() || root_.empty()) {
    return NotFoundError("seek in empty file");
  }
  if (target > duration()) {
    return NotFoundError("seek past end of recording");
  }

  auto pick_child = [target](const std::vector<InternalEntry>& entries) {
    // Last entry whose first offset is <= target (or the first entry).
    size_t chosen = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (SimTime(entries[i].first_offset_ns) <= target) {
        chosen = i;
      } else {
        break;
      }
    }
    return entries[chosen];
  };

  SeekResult result;
  std::vector<InternalEntry> const* level_entries = &root_;
  std::vector<InternalEntry> decoded;
  for (int level = height_ - 1; level > 0; --level) {
    const InternalEntry entry = pick_child(*level_entries);
    const auto& holder = pages_.at(static_cast<size_t>(entry.child_page));
    result.internal_pages_read.push_back(entry.child_page);
    if (!holder.embedded_internal.has_value()) {
      return DataLossError("expected embedded internal page in data page " +
                           std::to_string(entry.child_page));
    }
    CALLIOPE_ASSIGN_OR_RETURN(decoded, DecodeInternalPage(*holder.embedded_internal));
    level_entries = &decoded;
    if (level_entries->empty()) {
      return DataLossError("empty internal page");
    }
  }

  const InternalEntry leaf = pick_child(*level_entries);
  const auto& page = pages_.at(static_cast<size_t>(leaf.child_page));
  const auto it = std::lower_bound(
      page.records.begin(), page.records.end(), target,
      [](const MediaPacket& record, SimTime t) { return record.delivery_offset < t; });
  result.page_index = static_cast<size_t>(leaf.child_page);
  result.record_index = static_cast<size_t>(it - page.records.begin());
  if (it == page.records.end()) {
    // Target falls between this page's last record and the next page's
    // first; advance to the next page with records.
    for (size_t next = result.page_index + 1; next < pages_.size(); ++next) {
      if (!pages_[next].records.empty()) {
        result.page_index = next;
        result.record_index = 0;
        return result;
      }
    }
    return NotFoundError("seek past end of recording");
  }
  return result;
}

Status IbTreeBuilder::Add(const MediaPacket& packet) {
  if (packet.delivery_offset < last_offset_) {
    return InvalidArgumentError("packets must be added in delivery order");
  }
  if (packet.size + kRecordOverhead + kDataPageHeaderSize + kInternalPageSize > kDataPageSize) {
    return InvalidArgumentError("packet larger than a data page");
  }
  last_offset_ = packet.delivery_offset;
  const Bytes needed = kRecordOverhead + packet.size;
  if (current_dirty_ && current_.fill_bytes() + needed > kDataPageSize) {
    CloseDataPage();
  }
  current_.records.push_back(packet);
  current_dirty_ = true;
  return OkStatus();
}

void IbTreeBuilder::CloseDataPage() {
  current_.index = static_cast<int64_t>(file_.pages_.size());
  const bool had_records = !current_.records.empty();
  const InternalEntry entry{current_.first_offset().nanos(), current_.index};
  file_.pages_.push_back(std::move(current_));
  current_ = DataPage{};
  current_dirty_ = false;
  if (had_records) {
    AddEntry(0, entry);
  }
}

void IbTreeBuilder::AddEntry(int level, InternalEntry entry) {
  if (static_cast<size_t>(level) >= levels_.size()) {
    levels_.resize(static_cast<size_t>(level) + 1);
  }
  auto& entries = levels_[static_cast<size_t>(level)];
  entries.push_back(entry);
  if (entries.size() < kMaxInternalEntries) {
    return;
  }
  // Level full: copy it into the current (fresh) data page — the integrated
  // write that saves the extra seek — and index it one level up.
  if (current_.embedded_internal.has_value()) {
    // Extremely rare (two levels filling together): flush the open page
    // first so each data page carries at most one internal page.
    CloseDataPage();
  }
  const InternalEntry up{entries.front().first_offset_ns,
                         static_cast<int64_t>(file_.pages_.size())};
  current_.embedded_internal = EncodeInternalPage(entries);
  current_.embedded_level = level;
  current_dirty_ = true;
  ++file_.internal_page_count_;
  entries.clear();
  AddEntry(level + 1, up);
}

IbTreeFile IbTreeBuilder::Finish() {
  if (current_dirty_) {
    CloseDataPage();
  }
  if (levels_.empty()) {
    file_.height_ = 1;
    return std::move(file_);
  }
  // Flush leftover partial levels bottom-up as trailer pages; the topmost
  // level becomes the in-memory root.
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    if (levels_[level].empty()) {
      continue;
    }
    DataPage trailer;
    trailer.index = static_cast<int64_t>(file_.pages_.size());
    trailer.embedded_internal = EncodeInternalPage(levels_[level]);
    trailer.embedded_level = static_cast<int>(level);
    ++file_.internal_page_count_;
    const InternalEntry up{levels_[level].front().first_offset_ns, trailer.index};
    file_.pages_.push_back(std::move(trailer));
    levels_[level].clear();
    levels_[level + 1].push_back(up);
  }
  file_.root_ = std::move(levels_.back());
  file_.height_ = static_cast<int>(levels_.size());
  return std::move(file_);
}

}  // namespace calliope
