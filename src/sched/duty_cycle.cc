#include "src/sched/duty_cycle.h"

#include <algorithm>

namespace calliope {

SimTime WorstCaseSlotTime(const DiskParams& disk, const HbaParams& hba, Bytes block_size) {
  // Full-stroke seek (distance 1.0) + a full rotation + the slower of the
  // media and chain transfer + fixed overheads. A small margin covers
  // interrupt service time.
  const SimTime seek = disk.seek_settle + disk.seek_base + disk.seek_sqrt_coeff;
  const SimTime transfer =
      std::max(disk.media_rate.TransferTime(block_size), hba.bus_rate.TransferTime(block_size));
  const SimTime interrupt_margin = SimTime::Millis(2);
  return disk.controller_overhead + seek + disk.rotation_period + transfer + interrupt_margin;
}

int SlotsPerCycle(const DiskParams& disk, const HbaParams& hba, Bytes block_size, DataRate rate) {
  if (rate.is_zero()) {
    return 0;
  }
  const SimTime drain = BlockDrainTime(block_size, rate);
  const SimTime slot = WorstCaseSlotTime(disk, hba, block_size);
  return static_cast<int>(drain / slot);
}

DutyCycleAllocator::DutyCycleAllocator(const DiskParams& disk, const HbaParams& hba,
                                       Bytes block_size, int disk_count, bool striped)
    : disk_params_(disk),
      hba_params_(hba),
      block_size_(block_size),
      striped_(striped),
      per_disk_(static_cast<size_t>(disk_count), 0) {}

int DutyCycleAllocator::CapacityPerDisk(DataRate rate) const {
  return SlotsPerCycle(disk_params_, hba_params_, block_size_, rate);
}

SimTime DutyCycleAllocator::WorstCaseStartupDelay(DataRate rate) const {
  // "it is allocated a disk slot and must wait at most N-1 slots before the
  // MSU begins to deliver data" — N*D slots for striped layouts.
  const int slots_per_disk = CapacityPerDisk(rate);
  const int cycle_slots =
      striped_ ? slots_per_disk * static_cast<int>(per_disk_.size()) : slots_per_disk;
  const SimTime slot = WorstCaseSlotTime(disk_params_, hba_params_, block_size_);
  return slot * std::max(0, cycle_slots - 1);
}

bool DutyCycleAllocator::CanAdmit(int disk, DataRate rate) const {
  const int capacity = CapacityPerDisk(rate);
  if (striped_) {
    // Striped streams consume a slot on every disk's cycle; total machine
    // capacity is still capacity * disk_count streams, but admission is
    // machine-wide.
    return total_active() < capacity * static_cast<int>(per_disk_.size());
  }
  return per_disk_.at(static_cast<size_t>(disk)) < capacity;
}

Status DutyCycleAllocator::Admit(int disk, DataRate rate) {
  if (!CanAdmit(disk, rate)) {
    return ResourceExhaustedError("no free duty-cycle slot on disk " + std::to_string(disk));
  }
  ++per_disk_.at(static_cast<size_t>(disk));
  return OkStatus();
}

void DutyCycleAllocator::Release(int disk, DataRate rate) {
  auto& count = per_disk_.at(static_cast<size_t>(disk));
  if (count > 0) {
    --count;
  }
}

int DutyCycleAllocator::total_active() const {
  int total = 0;
  for (int count : per_disk_) {
    total += count;
  }
  return total;
}

}  // namespace calliope
