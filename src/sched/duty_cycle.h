// Disk duty-cycle admission control (§2.2.1).
//
// "To allocate bandwidth of a single disk, we give the disk a duty cycle
// which is divided into slots. Each slot is long enough to read or write a
// single disk block for one client stream. The number of slots in a cycle is
// the maximum number of block transfers that can be accomplished during the
// time it takes for a single stream to transmit its block."
//
// For striped layouts the cycle covers all D disks and has N*D slots, where N
// is a single disk's slot count; an arriving client (or a VCR command) waits
// at most one full cycle for its slot — D times longer than the non-striped
// case, the latency trade-off §2.3.3 discusses.
#ifndef CALLIOPE_SRC_SCHED_DUTY_CYCLE_H_
#define CALLIOPE_SRC_SCHED_DUTY_CYCLE_H_

#include <vector>

#include "src/hw/params.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace calliope {

// Worst-case time to position and transfer one block: full-stroke seek,
// full rotation, media transfer gated by the chain, interrupt overhead.
SimTime WorstCaseSlotTime(const DiskParams& disk, const HbaParams& hba, Bytes block_size);

// Time a stream takes to transmit (consume) one block at its rate.
inline SimTime BlockDrainTime(Bytes block_size, DataRate rate) {
  return rate.TransferTime(block_size);
}

// Slots per cycle for a single disk serving streams of `rate`.
int SlotsPerCycle(const DiskParams& disk, const HbaParams& hba, Bytes block_size, DataRate rate);

// Per-MSU admission bookkeeping: one slot per active stream on the stream's
// disk (non-striped) or one slot in the machine-wide cycle (striped).
class DutyCycleAllocator {
 public:
  DutyCycleAllocator(const DiskParams& disk, const HbaParams& hba, Bytes block_size,
                     int disk_count, bool striped);

  // Capacity per disk at the given per-stream rate.
  int CapacityPerDisk(DataRate rate) const;
  // Worst-case delay before a newly-admitted stream's first slot comes up.
  SimTime WorstCaseStartupDelay(DataRate rate) const;

  bool CanAdmit(int disk, DataRate rate) const;
  Status Admit(int disk, DataRate rate);
  void Release(int disk, DataRate rate);

  int active_streams(int disk) const { return per_disk_.at(static_cast<size_t>(disk)); }
  int total_active() const;
  bool striped() const { return striped_; }
  Bytes block_size() const { return block_size_; }

 private:
  DiskParams disk_params_;
  HbaParams hba_params_;
  Bytes block_size_;
  bool striped_;
  std::vector<int> per_disk_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_SCHED_DUTY_CYCLE_H_
