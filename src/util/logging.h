// Minimal leveled logging. Off by default so benchmarks and tests stay quiet;
// set CALLIOPE_LOG_LEVEL or call SetLogLevel for diagnostics.
#ifndef CALLIOPE_SRC_UTIL_LOGGING_H_
#define CALLIOPE_SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string_view>

namespace calliope {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarning, kError, kOff };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);

// Internal: emits one formatted line to stderr.
void LogLine(LogLevel level, std::string_view component, std::string_view message);

// Stream-style log statement; evaluates the stream only when enabled.
#define CALLIOPE_LOG(level, component)                                    \
  for (bool log_once = ::calliope::LogEnabled(::calliope::LogLevel::level); log_once; \
       log_once = false)                                                  \
  ::calliope::LogStream(::calliope::LogLevel::level, component)

class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogStream() { LogLine(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_LOGGING_H_
