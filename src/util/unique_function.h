// Move-only type-erased callable (std::move_only_function is C++23; this is
// the minimal C++20 equivalent). Used by the simulator's event queue so
// closures can own resources (notably coroutine handles) that must be
// destroyed if the event never fires.
#ifndef CALLIOPE_SRC_UTIL_UNIQUE_FUNCTION_H_
#define CALLIOPE_SRC_UTIL_UNIQUE_FUNCTION_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace calliope {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  R operator()(Args... args) { return impl_->Call(std::forward<Args>(args)...); }

  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual R Call(Args... args) = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F f) : fn(std::move(f)) {}
    R Call(Args... args) override { return fn(std::forward<Args>(args)...); }
    F fn;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_UNIQUE_FUNCTION_H_
