// Capped exponential backoff with deterministic seeded jitter.
//
// Shared by the MSU's Coordinator redial loop and the client's
// redirect-and-redial path: both must retry politely (exponential growth up
// to a cap) without synchronizing their retries (jitter), yet stay
// bit-reproducible inside the deterministic simulation (the jitter stream is
// a seeded Rng, not wall-clock entropy).
#ifndef CALLIOPE_SRC_UTIL_BACKOFF_H_
#define CALLIOPE_SRC_UTIL_BACKOFF_H_

#include <cstdint>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace calliope {

struct BackoffParams {
  BackoffParams() = default;

  SimTime initial = SimTime::Millis(100);  // first delay (before jitter)
  SimTime max = SimTime::Seconds(2);       // exponential growth cap
  double multiplier = 2.0;                 // growth factor per attempt
  // Each delay is scaled by a factor drawn uniformly from
  // [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.2;
};

class Backoff {
 public:
  Backoff(const BackoffParams& params, uint64_t seed);

  // Delay to wait before the next attempt. Grows geometrically from
  // `initial`, is clamped to `max` before jitter, and consumes one draw from
  // the jitter stream per call — so two Backoffs with the same params and
  // seed produce identical schedules.
  SimTime Next();

  // Back to the initial delay (a successful attempt). The jitter stream is
  // NOT rewound; determinism only requires the same call sequence.
  void Reset();

  int attempts() const { return attempts_; }

 private:
  BackoffParams params_;
  Rng rng_;
  int attempts_ = 0;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_BACKOFF_H_
