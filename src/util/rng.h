// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256++ core with convenience distributions. Every stochastic model in
// the system draws from an Rng seeded from the experiment configuration, so a
// given seed reproduces a run exactly.
#ifndef CALLIOPE_SRC_UTIL_RNG_H_
#define CALLIOPE_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace calliope {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextU64();

  // Uniform over [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Normal via Box-Muller.
  double NextNormal(double mean, double stddev);

  // True with probability p.
  bool NextBernoulli(double p);

  // Fork a statistically-independent child stream (for per-component RNGs).
  Rng Fork();

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

// Zipf-distributed ranks in [0, n): rank 0 is most popular. Used to model
// skewed content popularity in the striping ablation.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double skew);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_RNG_H_
