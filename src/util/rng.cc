#include "src/util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace calliope {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfDistribution::ZipfDistribution(size_t n, double skew) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace calliope
