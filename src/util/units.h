// Strong unit types used throughout the simulation: time, byte counts and
// data rates. All simulation time is integer nanoseconds so runs are exactly
// reproducible; rates convert through 128-bit-safe integer math where the
// intermediate products could overflow.
#ifndef CALLIOPE_SRC_UTIL_UNITS_H_
#define CALLIOPE_SRC_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace calliope {

// A point or span of simulated time, in nanoseconds. Negative spans are legal
// for arithmetic but never appear as schedule times.
class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  constexpr explicit SimTime(int64_t nanoseconds) : ns_(nanoseconds) {}

  static constexpr SimTime Nanos(int64_t n) { return SimTime(n); }
  static constexpr SimTime Micros(int64_t us) { return SimTime(us * 1000); }
  static constexpr SimTime Millis(int64_t ms) { return SimTime(ms * 1000000); }
  static constexpr SimTime Seconds(int64_t s) { return SimTime(s * 1000000000); }
  static constexpr SimTime SecondsF(double s) {
    return SimTime(static_cast<int64_t>(s * 1e9));
  }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1000000; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double millis_f() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr SimTime operator+(SimTime other) const { return SimTime(ns_ + other.ns_); }
  constexpr SimTime operator-(SimTime other) const { return SimTime(ns_ - other.ns_); }
  constexpr SimTime operator*(int64_t k) const { return SimTime(ns_ * k); }
  constexpr SimTime operator/(int64_t k) const { return SimTime(ns_ / k); }
  constexpr int64_t operator/(SimTime other) const { return ns_ / other.ns_; }
  SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  SimTime& operator-=(SimTime other) {
    ns_ -= other.ns_;
    return *this;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;  // e.g. "12.345ms"

 private:
  int64_t ns_;
};

// A byte count (size or offset).
class Bytes {
 public:
  constexpr Bytes() : n_(0) {}
  constexpr explicit Bytes(int64_t n) : n_(n) {}

  static constexpr Bytes KiB(int64_t k) { return Bytes(k * 1024); }
  static constexpr Bytes MiB(int64_t m) { return Bytes(m * 1024 * 1024); }
  static constexpr Bytes GiB(int64_t g) { return Bytes(g * 1024 * 1024 * 1024); }

  constexpr int64_t count() const { return n_; }
  constexpr double mebibytes() const { return static_cast<double>(n_) / (1024.0 * 1024.0); }
  // "MB" in the paper means 10^6 bytes ("All of the measurements in this
  // section are in 10^6 bytes/sec units"), so provide that view too.
  constexpr double megabytes() const { return static_cast<double>(n_) * 1e-6; }

  constexpr Bytes operator+(Bytes other) const { return Bytes(n_ + other.n_); }
  constexpr Bytes operator-(Bytes other) const { return Bytes(n_ - other.n_); }
  constexpr Bytes operator*(int64_t k) const { return Bytes(n_ * k); }
  constexpr Bytes operator/(int64_t k) const { return Bytes(n_ / k); }
  constexpr int64_t operator/(Bytes other) const { return n_ / other.n_; }
  Bytes& operator+=(Bytes other) {
    n_ += other.n_;
    return *this;
  }
  Bytes& operator-=(Bytes other) {
    n_ -= other.n_;
    return *this;
  }

  constexpr auto operator<=>(const Bytes&) const = default;

  std::string ToString() const;  // e.g. "256KiB"

 private:
  int64_t n_;
};

// A data rate in bits per second. Media rates in the paper are quoted in
// Mbit/s (e.g. 1.5 Mbit/s MPEG-1); device throughputs in 10^6 bytes/s.
class DataRate {
 public:
  constexpr DataRate() : bits_per_sec_(0) {}
  constexpr explicit DataRate(int64_t bits_per_sec) : bits_per_sec_(bits_per_sec) {}

  static constexpr DataRate BitsPerSec(int64_t b) { return DataRate(b); }
  static constexpr DataRate KilobitsPerSec(int64_t kb) { return DataRate(kb * 1000); }
  static constexpr DataRate MegabitsPerSec(double mb) {
    return DataRate(static_cast<int64_t>(mb * 1e6));
  }
  static constexpr DataRate BytesPerSec(int64_t bytes) { return DataRate(bytes * 8); }
  static constexpr DataRate MegabytesPerSec(double mbytes) {
    return DataRate(static_cast<int64_t>(mbytes * 8e6));
  }

  constexpr int64_t bits_per_sec() const { return bits_per_sec_; }
  constexpr int64_t bytes_per_sec() const { return bits_per_sec_ / 8; }
  constexpr double megabits_per_sec() const { return static_cast<double>(bits_per_sec_) * 1e-6; }
  constexpr double megabytes_per_sec() const {
    return static_cast<double>(bits_per_sec_) / 8e6;
  }
  constexpr bool is_zero() const { return bits_per_sec_ == 0; }

  // Time to move `size` at this rate. Uses __int128 to avoid overflow for
  // large sizes (a 2-hour movie is ~1.35 GB, * 8e9 overflows int64).
  constexpr SimTime TransferTime(Bytes size) const {
    if (bits_per_sec_ == 0) {
      return SimTime::Max();
    }
    __int128 numerator = static_cast<__int128>(size.count()) * 8 * 1000000000;
    return SimTime(static_cast<int64_t>(numerator / bits_per_sec_));
  }

  // Bytes moved over `span` at this rate.
  constexpr Bytes BytesIn(SimTime span) const {
    __int128 numerator = static_cast<__int128>(span.nanos()) * bits_per_sec_;
    return Bytes(static_cast<int64_t>(numerator / (8 * static_cast<__int128>(1000000000))));
  }

  constexpr DataRate operator+(DataRate other) const {
    return DataRate(bits_per_sec_ + other.bits_per_sec_);
  }
  constexpr DataRate operator-(DataRate other) const {
    return DataRate(bits_per_sec_ - other.bits_per_sec_);
  }
  constexpr DataRate operator*(int64_t k) const { return DataRate(bits_per_sec_ * k); }

  constexpr auto operator<=>(const DataRate&) const = default;

  std::string ToString() const;  // e.g. "1.50Mbit/s"

 private:
  int64_t bits_per_sec_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_UNITS_H_
