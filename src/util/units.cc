#include "src/util/units.h"

#include <cmath>
#include <cstdio>

namespace calliope {

namespace {

std::string FormatDouble(double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", v, suffix);
  return buf;
}

}  // namespace

std::string SimTime::ToString() const {
  const int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns < 1000) {
    return FormatDouble(static_cast<double>(ns_), "ns");
  }
  if (abs_ns < 1000000) {
    return FormatDouble(static_cast<double>(ns_) / 1e3, "us");
  }
  if (abs_ns < 1000000000) {
    return FormatDouble(static_cast<double>(ns_) / 1e6, "ms");
  }
  return FormatDouble(static_cast<double>(ns_) / 1e9, "s");
}

std::string Bytes::ToString() const {
  const int64_t abs_n = n_ < 0 ? -n_ : n_;
  if (abs_n < 1024) {
    return FormatDouble(static_cast<double>(n_), "B");
  }
  if (abs_n < 1024 * 1024) {
    return FormatDouble(static_cast<double>(n_) / 1024.0, "KiB");
  }
  if (abs_n < 1024LL * 1024 * 1024) {
    return FormatDouble(static_cast<double>(n_) / (1024.0 * 1024.0), "MiB");
  }
  return FormatDouble(static_cast<double>(n_) / (1024.0 * 1024.0 * 1024.0), "GiB");
}

std::string DataRate::ToString() const {
  if (bits_per_sec_ < 1000000) {
    return FormatDouble(static_cast<double>(bits_per_sec_) / 1e3, "Kbit/s");
  }
  return FormatDouble(static_cast<double>(bits_per_sec_) / 1e6, "Mbit/s");
}

}  // namespace calliope
