// Latency histogram with cumulative-distribution queries.
//
// Graphs 1 and 2 in the paper plot "cumulative percent of packets" against
// "milliseconds late" in one-millisecond bins; LatenessHistogram reproduces
// exactly that view and also provides quantiles for tests.
#ifndef CALLIOPE_SRC_UTIL_HISTOGRAM_H_
#define CALLIOPE_SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace calliope {

class LatenessHistogram {
 public:
  // Bins are `bin_width` wide, covering [0, bin_width * bin_count); samples
  // beyond the last bin land in an overflow bin, samples below zero (early
  // packets) in an underflow bin.
  explicit LatenessHistogram(SimTime bin_width = SimTime::Millis(1), size_t bin_count = 1000);

  void Record(SimTime lateness);
  void Merge(const LatenessHistogram& other);

  int64_t total_count() const { return total_; }
  int64_t overflow_count() const { return overflow_; }
  int64_t underflow_count() const { return underflow_; }

  // Fraction (0..1) of samples with lateness <= threshold. Early samples
  // count as on time, matching the paper's metric.
  double FractionWithin(SimTime threshold) const;

  // Smallest lateness L such that FractionWithin(L) >= q. Returns the upper
  // edge of the containing bin; SimTime::Max() if q falls in overflow.
  SimTime Quantile(double q) const;

  SimTime MaxRecorded() const { return max_recorded_; }
  SimTime MeanLateness() const;

  // Rows of (upper bin edge, cumulative percent), thinned to `points` rows,
  // for plotting the paper's cumulative distribution curves.
  struct CdfPoint {
    SimTime lateness;
    double cumulative_percent;
  };
  std::vector<CdfPoint> CdfSeries(size_t points = 60) const;

  // Compact ASCII rendering of the CDF for bench output.
  std::string ToAsciiCdf(const std::string& label, size_t rows = 16) const;

 private:
  SimTime bin_width_;
  std::vector<int64_t> bins_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
  int64_t lateness_sum_ns_ = 0;  // clamped-at-zero sum for mean
  SimTime max_recorded_ = SimTime::Nanos(INT64_MIN);
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_HISTOGRAM_H_
