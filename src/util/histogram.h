// Histograms with cumulative-distribution queries.
//
// Two shapes live here:
//  - Histogram: general-purpose counts over exponential (power-of-two) bins,
//    for arbitrary non-negative integer samples (durations, sizes, depths).
//    Integer-only state so snapshots are bit-identical across equal runs.
//  - LatenessHistogram: the paper-specific linear-bin view. Graphs 1 and 2
//    plot "cumulative percent of packets" against "milliseconds late" in
//    one-millisecond bins; LatenessHistogram reproduces exactly that view
//    and also provides quantiles for tests.
#ifndef CALLIOPE_SRC_UTIL_HISTOGRAM_H_
#define CALLIOPE_SRC_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace calliope {

// General-purpose histogram over exponential bins. Bin 0 holds samples <= 0;
// bin k (k >= 1) holds samples in [2^(k-1), 2^k). 64 bins cover the full
// non-negative int64 range. Negative samples clamp to bin 0.
class Histogram {
 public:
  static constexpr size_t kBinCount = 64;

  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  // Sum of samples, with negative samples clamped to zero (mirrors the
  // LatenessHistogram underflow convention below).
  int64_t sum() const { return sum_; }
  // Raw extremes over recorded samples; 0 when empty.
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  int64_t Mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  // Smallest bin upper edge E such that at least ceil(q * count) samples are
  // <= E, clamped to [min, max] so the answer is always a witnessed value
  // range. Returns 0 when empty.
  int64_t Quantile(double q) const;

 private:
  std::array<int64_t, kBinCount> bins_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Underflow convention (shared by every aggregate below): early packets —
// negative lateness — count as delivered exactly on time. They clamp to zero
// lateness in FractionWithin, Quantile, and MeanLateness alike; only
// MaxRecorded reports the raw signed value. Early delivery is a non-event in
// the paper's metrics (the client buffers it), so no aggregate may reward or
// penalise it differently from a perfectly punctual packet.
class LatenessHistogram {
 public:
  // Bins are `bin_width` wide, covering [0, bin_width * bin_count); samples
  // beyond the last bin land in an overflow bin, samples below zero (early
  // packets) in an underflow bin.
  explicit LatenessHistogram(SimTime bin_width = SimTime::Millis(1), size_t bin_count = 1000);

  void Record(SimTime lateness);
  void Merge(const LatenessHistogram& other);

  int64_t total_count() const { return total_; }
  int64_t overflow_count() const { return overflow_; }
  int64_t underflow_count() const { return underflow_; }

  // Fraction (0..1) of samples with lateness <= threshold. Early samples
  // count as on time, matching the paper's metric.
  double FractionWithin(SimTime threshold) const;

  // Exact number of samples with lateness strictly greater than `threshold`
  // (threshold must be a bin boundary multiple for exactness; it is rounded
  // down to one). Integer counterpart of FractionWithin for reports.
  int64_t CountAbove(SimTime threshold) const;

  // Smallest lateness L such that FractionWithin(L) >= q. Returns the upper
  // edge of the containing bin; SimTime() (zero) when the quantile falls in
  // the underflow bin (early samples are on time, per the convention above);
  // SimTime::Max() if q falls in overflow.
  SimTime Quantile(double q) const;

  // Raw signed maximum (the one aggregate exempt from the clamp convention).
  SimTime MaxRecorded() const { return max_recorded_; }
  // Mean with early samples clamped to zero lateness.
  SimTime MeanLateness() const;

  // Rows of (upper bin edge, cumulative percent), thinned to `points` rows,
  // for plotting the paper's cumulative distribution curves.
  struct CdfPoint {
    SimTime lateness;
    double cumulative_percent;
  };
  std::vector<CdfPoint> CdfSeries(size_t points = 60) const;

  // Compact ASCII rendering of the CDF for bench output.
  std::string ToAsciiCdf(const std::string& label, size_t rows = 16) const;

 private:
  SimTime bin_width_;
  std::vector<int64_t> bins_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
  int64_t lateness_sum_ns_ = 0;  // clamped-at-zero sum for mean
  SimTime max_recorded_ = SimTime::Nanos(INT64_MIN);
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_HISTOGRAM_H_
