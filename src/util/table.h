// ASCII table rendering for benchmark output. The Table 1 / scalability
// benches print paper-style rows with this.
#ifndef CALLIOPE_SRC_UTIL_TABLE_H_
#define CALLIOPE_SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace calliope {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision; empty cells for NaN.
  void AddRow(const std::string& label, const std::vector<double>& values, int precision = 1);

  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_TABLE_H_
