#include "src/util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace calliope {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::AddRow(const std::string& label, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  char buf[64];
  for (double v : values) {
    if (std::isnan(v)) {
      cells.emplace_back("");
    } else {
      std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
      cells.emplace_back(buf);
    }
  }
  AddRow(std::move(cells));
}

std::string AsciiTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) {
    sep += std::string(w + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += sep;
  return out;
}

}  // namespace calliope
