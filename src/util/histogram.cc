#include "src/util/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace calliope {
namespace {

// Index of the exponential bin holding `value`: 0 for value <= 0, else
// 1 + floor(log2(value)), capped at the last bin.
size_t ExpBin(int64_t value) {
  if (value <= 0) {
    return 0;
  }
  const auto width = static_cast<size_t>(std::bit_width(static_cast<uint64_t>(value)));
  return std::min(width, Histogram::kBinCount - 1);
}

}  // namespace

Histogram::Histogram() { bins_.fill(0); }

void Histogram::Record(int64_t value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += std::max<int64_t>(value, 0);
  ++bins_[ExpBin(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kBinCount; ++i) {
    bins_[i] += other.bins_[i];
  }
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  const auto target =
      std::min<int64_t>(count_, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t covered = 0;
  for (size_t i = 0; i < kBinCount; ++i) {
    covered += bins_[i];
    if (covered >= target) {
      // Upper edge of bin i is 2^i - 1 for integer samples (bin 0's edge is 0).
      const int64_t edge = i == 0 ? 0 : (i >= 63 ? INT64_MAX : (int64_t{1} << i) - 1);
      const int64_t lo = std::max<int64_t>(min_, 0);  // negatives clamp to zero
      return std::clamp(edge, lo, std::max(max_, lo));
    }
  }
  return max_;
}

LatenessHistogram::LatenessHistogram(SimTime bin_width, size_t bin_count)
    : bin_width_(bin_width), bins_(bin_count, 0) {
  assert(bin_width.nanos() > 0);
  assert(bin_count > 0);
}

void LatenessHistogram::Record(SimTime lateness) {
  ++total_;
  max_recorded_ = std::max(max_recorded_, lateness);
  if (lateness.nanos() > 0) {
    lateness_sum_ns_ += lateness.nanos();
  }
  if (lateness.nanos() < 0) {
    ++underflow_;
    return;
  }
  const size_t bin = static_cast<size_t>(lateness.nanos() / bin_width_.nanos());
  if (bin >= bins_.size()) {
    ++overflow_;
    return;
  }
  ++bins_[bin];
}

void LatenessHistogram::Merge(const LatenessHistogram& other) {
  assert(bin_width_ == other.bin_width_ && bins_.size() == other.bins_.size());
  for (size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  lateness_sum_ns_ += other.lateness_sum_ns_;
  max_recorded_ = std::max(max_recorded_, other.max_recorded_);
}

double LatenessHistogram::FractionWithin(SimTime threshold) const {
  if (total_ == 0) {
    return 1.0;
  }
  int64_t covered = underflow_;
  const int64_t last_bin = threshold.nanos() / bin_width_.nanos();
  for (size_t i = 0; i < bins_.size() && static_cast<int64_t>(i) <= last_bin; ++i) {
    covered += bins_[i];
  }
  return static_cast<double>(covered) / static_cast<double>(total_);
}

int64_t LatenessHistogram::CountAbove(SimTime threshold) const {
  int64_t above = overflow_;
  const int64_t last_bin = threshold.nanos() / bin_width_.nanos();
  for (size_t i = 0; i < bins_.size(); ++i) {
    if (static_cast<int64_t>(i) > last_bin) {
      above += bins_[i];
    }
  }
  return above;
}

SimTime LatenessHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return SimTime();
  }
  // ceil, not floor: the answer L must actually satisfy FractionWithin(L) >= q.
  // (A floor target let Quantile return a bin covering fewer than q of the
  // samples whenever q * total was fractional.)
  const auto target = std::min<int64_t>(
      total_, static_cast<int64_t>(std::ceil(q * static_cast<double>(total_))));
  int64_t covered = underflow_;
  if (covered >= target) {
    // Quantile falls among early samples, which count as exactly on time.
    return SimTime();
  }
  for (size_t i = 0; i < bins_.size(); ++i) {
    covered += bins_[i];
    if (covered >= target) {
      return bin_width_ * static_cast<int64_t>(i + 1);
    }
  }
  return SimTime::Max();
}

SimTime LatenessHistogram::MeanLateness() const {
  if (total_ == 0) {
    return SimTime();
  }
  return SimTime(lateness_sum_ns_ / total_);
}

std::vector<LatenessHistogram::CdfPoint> LatenessHistogram::CdfSeries(size_t points) const {
  std::vector<CdfPoint> out;
  if (total_ == 0 || points == 0) {
    return out;
  }
  // Find the last non-empty bin so the series spans the interesting range.
  size_t last = 0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] > 0) {
      last = i;
    }
  }
  const size_t span = last + 1;
  const size_t step = std::max<size_t>(1, span / points);
  int64_t covered = underflow_;
  for (size_t i = 0; i < span; ++i) {
    covered += bins_[i];
    if ((i + 1) % step == 0 || i == span - 1) {
      out.push_back({bin_width_ * static_cast<int64_t>(i + 1),
                     100.0 * static_cast<double>(covered) / static_cast<double>(total_)});
    }
  }
  if (overflow_ > 0) {
    out.push_back({SimTime::Max(), 100.0});
  }
  return out;
}

std::string LatenessHistogram::ToAsciiCdf(const std::string& label, size_t rows) const {
  std::string out = label + " (n=" + std::to_string(total_) + ")\n";
  const auto series = CdfSeries(rows);
  char buf[128];
  for (const auto& point : series) {
    const int bar = static_cast<int>(point.cumulative_percent / 2.0);
    if (point.lateness == SimTime::Max()) {
      std::snprintf(buf, sizeof(buf), "  >tail  %6.2f%% ", point.cumulative_percent);
    } else {
      std::snprintf(buf, sizeof(buf), "  %5lldms %6.2f%% ",
                    static_cast<long long>(point.lateness.millis()), point.cumulative_percent);
    }
    out += buf;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace calliope
