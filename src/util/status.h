// Status and Result<T>: exception-free error propagation for library APIs.
//
// Modeled after absl::Status / absl::StatusOr but self-contained. Library code
// returns Status (or Result<T>) instead of throwing; callers are expected to
// check `ok()` before using a Result's value.
#ifndef CALLIOPE_SRC_UTIL_STATUS_H_
#define CALLIOPE_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace calliope {

enum class StatusCode {
  kOk = 0,
  kNotFound,          // named entity (content, port, MSU, file) does not exist
  kAlreadyExists,     // duplicate name / id
  kInvalidArgument,   // malformed request
  kPermissionDenied,  // customer lacks rights for the operation
  kResourceExhausted, // no bandwidth / disk space / slots available
  kFailedPrecondition,// operation illegal in current state (e.g. seek while recording)
  kUnavailable,       // peer down / connection broken; retry may succeed
  kDeadlineExceeded,  // timed out
  kDataLoss,          // corrupt on-disk structure (bad page checksum etc.)
  kInternal,          // invariant violation
  kUnimplemented,
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status InvalidArgumentError(std::string message);
Status PermissionDeniedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

// RETURN_IF_ERROR(expr): early-return a non-OK Status from a Status-returning
// function. Single-evaluation.
#define CALLIOPE_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::calliope::Status status_macro_tmp = (expr); \
    if (!status_macro_tmp.ok()) {                 \
      return status_macro_tmp;                    \
    }                                             \
  } while (0)

// ASSIGN_OR_RETURN(lhs, expr): evaluate a Result-returning expr; on error,
// propagate the status; otherwise move the value into lhs.
#define CALLIOPE_ASSIGN_OR_RETURN(lhs, expr)                       \
  CALLIOPE_ASSIGN_OR_RETURN_IMPL_(                                 \
      CALLIOPE_STATUS_CONCAT_(result_macro_tmp, __LINE__), lhs, expr)
#define CALLIOPE_STATUS_CONCAT_INNER_(a, b) a##b
#define CALLIOPE_STATUS_CONCAT_(a, b) CALLIOPE_STATUS_CONCAT_INNER_(a, b)
#define CALLIOPE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) {                                      \
    return tmp.status();                                \
  }                                                     \
  lhs = std::move(tmp).value()

// Coroutine variants: co_return the failing status from a Co<Status> /
// Co<Result<T>> coroutine body.
#define CALLIOPE_CO_RETURN_IF_ERROR(expr)         \
  do {                                            \
    ::calliope::Status status_macro_tmp = (expr); \
    if (!status_macro_tmp.ok()) {                 \
      co_return status_macro_tmp;                 \
    }                                             \
  } while (0)

#define CALLIOPE_CO_ASSIGN_OR_RETURN(lhs, expr)                    \
  CALLIOPE_CO_ASSIGN_OR_RETURN_IMPL_(                              \
      CALLIOPE_STATUS_CONCAT_(result_macro_tmp, __LINE__), lhs, expr)
#define CALLIOPE_CO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                       \
  if (!tmp.ok()) {                                         \
    co_return tmp.status();                                \
  }                                                        \
  lhs = std::move(tmp).value()

}  // namespace calliope

#endif  // CALLIOPE_SRC_UTIL_STATUS_H_
