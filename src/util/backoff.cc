#include "src/util/backoff.h"

#include <algorithm>
#include <cmath>

namespace calliope {

Backoff::Backoff(const BackoffParams& params, uint64_t seed)
    : params_(params), rng_(seed) {}

SimTime Backoff::Next() {
  double base = static_cast<double>(params_.initial.nanos());
  for (int i = 0; i < attempts_; ++i) {
    base *= params_.multiplier;
    if (base >= static_cast<double>(params_.max.nanos())) {
      base = static_cast<double>(params_.max.nanos());
      break;
    }
  }
  base = std::min(base, static_cast<double>(params_.max.nanos()));
  ++attempts_;
  const double jitter = params_.jitter_fraction;
  const double scale = 1.0 - jitter + 2.0 * jitter * rng_.NextDouble();
  const double jittered = std::max(1.0, base * scale);
  return SimTime(static_cast<int64_t>(jittered));
}

void Backoff::Reset() { attempts_ = 0; }

}  // namespace calliope
