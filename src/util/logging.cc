#include "src/util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace calliope {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("CALLIOPE_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kOff;
  }
  if (std::strcmp(env, "trace") == 0) {
    return LogLevel::kTrace;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warning") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kOff;
}

LogLevel& CurrentLevel() {
  static LogLevel level = InitialLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { CurrentLevel() = level; }

LogLevel GetLogLevel() { return CurrentLevel(); }

bool LogEnabled(LogLevel level) { return level >= CurrentLevel() && CurrentLevel() != LogLevel::kOff; }

void LogLine(LogLevel level, std::string_view component, std::string_view message) {
  std::fprintf(stderr, "[%s %.*s] %.*s\n", LevelName(level), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace calliope
