// Structural ClusterReport diff with per-field tolerances.
//
// The fidelity equivalence suite compares a flow-mode run against a
// per-packet run of the same seed: admissions and packet counts must match
// exactly, while lateness/gap quantiles only need to agree within the coarse
// timer's rounding. A plain operator== cannot express that, and eyeballing
// two ToText() dumps does not scale to seed sweeps — so this walks both
// reports field by field and returns every mismatch as a typed entry.
#ifndef CALLIOPE_SRC_OBS_REPORT_DIFF_H_
#define CALLIOPE_SRC_OBS_REPORT_DIFF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/report.h"

namespace calliope {

struct ReportDiffOptions {
  // A field matches when |a - b| <= abs + rel * max(|a|, |b|).
  struct Tolerance {
    Tolerance() = default;
    Tolerance(int64_t abs_in, double rel_in) : abs(abs_in), rel(rel_in) {}
    int64_t abs = 0;
    double rel = 0.0;
  };

  // Stream/port identity fields (msu, disk, file, flags) are always exact.
  Tolerance packets;              // packets_sent, received, out_of_order, glitches
  // packets_late counts samples at/over the 1 ms histogram bin edge, so a
  // few-hundred-µs modelling difference (e.g. the per-packet CPU tail the
  // flow model omits) shifts borderline samples across it. Defaults to the
  // `packets` tolerance; loosen it independently when comparing across
  // fidelity modes.
  std::optional<Tolerance> late_packets;
  Tolerance lateness_us;          // stream p50/p99 lateness quantiles
  // max_lateness_us is an extreme-value statistic: a single wire-queueing
  // collision (e.g. a packet landing behind another stream's aggregated flow
  // chunk) moves it by a whole frame transfer time without shifting p50/p99.
  // Defaults to the `lateness_us` tolerance; budget it separately when
  // comparing across fidelity modes.
  std::optional<Tolerance> max_lateness_us;
  Tolerance gap_us;               // port max_gap_us
  Tolerance metric_default;       // metrics-section values without a specific rule
  bool compare_metrics = true;    // false: diff only the streams/ports sections
  // Timeline section (present only when a MetricsSampler ran). Structure is
  // always exact — window size, window count, SLO identity (name, threshold,
  // min_breach_windows) — while the per-window values get tolerances:
  // `timeline_counts` budgets packet/depth/cache counts and breach-window
  // tallies, `timeline_us` the µs-valued quantiles, gaps and breach
  // timestamps. Zero defaults mean byte-exact, matching the chaos harness's
  // equal-seed contract.
  Tolerance timeline_counts;
  Tolerance timeline_us;
  bool compare_timeline = true;   // false: ignore the timeline section entirely
  // Metric names starting with any of these prefixes are skipped (e.g.
  // "sim.flow." when comparing across fidelity modes, or "cpu." where
  // scheduling noise is expected to differ).
  std::vector<std::string> ignore_metric_prefixes;
};

struct ReportDiff {
  struct Entry {
    std::string field;  // dotted path, e.g. "streams[12].p99_lateness_us"
    int64_t lhs = 0;
    int64_t rhs = 0;
    std::string note;   // "missing in lhs", "beyond tolerance", ...
  };

  std::vector<Entry> entries;
  bool empty() const { return entries.empty(); }
  std::string ToText() const;
};

ReportDiff DiffClusterReports(const ClusterReport& lhs, const ClusterReport& rhs,
                              const ReportDiffOptions& options = ReportDiffOptions());

}  // namespace calliope

#endif  // CALLIOPE_SRC_OBS_REPORT_DIFF_H_
