// TraceRecorder: structured span/instant events in Chrome trace_event JSON.
//
// Subsystems record spans (admission decisions, RPCs, disk service slots,
// stream lifetimes, failover phases) and instants (crashes, fault firings,
// first packets) against named tracks; ToJson()/WriteFile() emit the Chrome
// trace-event format so a run opens directly in chrome://tracing or
// https://ui.perfetto.dev. Each track renders as one "process" row, with pids
// assigned deterministically in order of first use.
//
// Recording is off by default and costs one branch per call when disabled;
// the recorder only observes and never feeds back into the simulation, so
// enabling it cannot perturb a deterministic run.
#ifndef CALLIOPE_SRC_OBS_TRACE_H_
#define CALLIOPE_SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace calliope {

class TraceRecorder {
 public:
  explicit TraceRecorder(Simulator& sim) : sim_(&sim) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Complete span from `start` to Now() on `track`. Call at the end of the
  // operation with the start time captured when it began.
  void Span(const std::string& track, const std::string& category, const std::string& name,
            SimTime start, const std::string& detail = std::string());

  // Complete span with an explicit duration (for windows known up front,
  // e.g. fault-injection windows scheduled at arm time).
  void SpanAt(const std::string& track, const std::string& category, const std::string& name,
              SimTime start, SimTime duration, const std::string& detail = std::string());

  // Zero-duration marker at Now().
  void Instant(const std::string& track, const std::string& category, const std::string& name,
               const std::string& detail = std::string());

  size_t event_count() const { return events_.size(); }

  // {"traceEvents":[...]} with process_name metadata per track.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    Event() = default;
    char phase = 'X';  // 'X' complete span, 'i' instant
    int pid = 0;
    std::string category;
    std::string name;
    std::string detail;
    SimTime start;
    SimTime duration;
  };

  int TrackPid(const std::string& track);

  Simulator* sim_;
  bool enabled_ = false;
  std::map<std::string, int> track_pids_;
  std::vector<std::string> track_names_;  // index = pid
  std::vector<Event> events_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_OBS_TRACE_H_
