#include "src/obs/report_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace calliope {

namespace {

bool WithinTolerance(int64_t a, int64_t b, const ReportDiffOptions::Tolerance& tolerance) {
  const int64_t delta = std::llabs(a - b);
  const auto budget = static_cast<double>(tolerance.abs) +
                      tolerance.rel * static_cast<double>(std::max(std::llabs(a), std::llabs(b)));
  return static_cast<double>(delta) <= budget;
}

class DiffBuilder {
 public:
  explicit DiffBuilder(ReportDiff* out) : out_(out) {}

  void Field(const std::string& path, int64_t lhs, int64_t rhs,
             const ReportDiffOptions::Tolerance& tolerance) {
    if (WithinTolerance(lhs, rhs, tolerance)) {
      return;
    }
    out_->entries.push_back(ReportDiff::Entry{path, lhs, rhs, "beyond tolerance"});
  }

  void Exact(const std::string& path, int64_t lhs, int64_t rhs) {
    Field(path, lhs, rhs, ReportDiffOptions::Tolerance());
  }

  void ExactText(const std::string& path, const std::string& lhs, const std::string& rhs) {
    if (lhs == rhs) {
      return;
    }
    out_->entries.push_back(ReportDiff::Entry{path, 0, 0, "\"" + lhs + "\" vs \"" + rhs + "\""});
  }

  void Missing(const std::string& path, bool in_lhs) {
    out_->entries.push_back(
        ReportDiff::Entry{path, 0, 0, in_lhs ? "missing in rhs" : "missing in lhs"});
  }

 private:
  ReportDiff* out_;
};

bool Ignored(const std::string& name, const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (name.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

void DiffStreams(const ClusterReport& lhs, const ClusterReport& rhs,
                 const ReportDiffOptions& options, DiffBuilder& diff) {
  std::map<int64_t, const StreamQosReport*> right;
  for (const StreamQosReport& stream : rhs.streams) {
    right[stream.stream_id] = &stream;
  }
  for (const StreamQosReport& a : lhs.streams) {
    const std::string path = "streams[" + std::to_string(a.stream_id) + "]";
    auto it = right.find(a.stream_id);
    if (it == right.end()) {
      diff.Missing(path, /*in_lhs=*/true);
      continue;
    }
    const StreamQosReport& b = *it->second;
    right.erase(it);
    diff.ExactText(path + ".msu", a.msu, b.msu);
    diff.ExactText(path + ".file", a.file, b.file);
    diff.Exact(path + ".group_id", a.group_id, b.group_id);
    diff.Exact(path + ".disk", a.disk, b.disk);
    diff.Exact(path + ".recording", a.recording ? 1 : 0, b.recording ? 1 : 0);
    diff.Exact(path + ".finished", a.finished ? 1 : 0, b.finished ? 1 : 0);
    diff.Field(path + ".packets_sent", a.packets_sent, b.packets_sent, options.packets);
    diff.Field(path + ".packets_late", a.packets_late, b.packets_late,
               options.late_packets.value_or(options.packets));
    diff.Field(path + ".p50_lateness_us", a.p50_lateness_us, b.p50_lateness_us,
               options.lateness_us);
    diff.Field(path + ".p99_lateness_us", a.p99_lateness_us, b.p99_lateness_us,
               options.lateness_us);
    diff.Field(path + ".max_lateness_us", a.max_lateness_us, b.max_lateness_us,
               options.max_lateness_us.value_or(options.lateness_us));
  }
  for (const auto& [id, stream] : right) {
    diff.Missing("streams[" + std::to_string(id) + "]", /*in_lhs=*/false);
  }
}

void DiffPorts(const ClusterReport& lhs, const ClusterReport& rhs,
               const ReportDiffOptions& options, DiffBuilder& diff) {
  std::map<std::pair<std::string, std::string>, const PortQosReport*> right;
  for (const PortQosReport& port : rhs.ports) {
    right[{port.client, port.port}] = &port;
  }
  for (const PortQosReport& a : lhs.ports) {
    const std::string path = "ports[" + a.client + "/" + a.port + "]";
    auto it = right.find({a.client, a.port});
    if (it == right.end()) {
      diff.Missing(path, /*in_lhs=*/true);
      continue;
    }
    const PortQosReport& b = *it->second;
    right.erase(it);
    diff.Field(path + ".packets_received", a.packets_received, b.packets_received,
               options.packets);
    diff.Field(path + ".out_of_order", a.out_of_order, b.out_of_order, options.packets);
    diff.Field(path + ".glitches", a.glitches, b.glitches, options.packets);
    diff.Field(path + ".max_gap_us", a.max_gap_us, b.max_gap_us, options.gap_us);
  }
  for (const auto& [key, port] : right) {
    diff.Missing("ports[" + key.first + "/" + key.second + "]", /*in_lhs=*/false);
  }
}

template <typename Map, typename Emit>
void DiffMetricMaps(const Map& lhs, const Map& rhs, const ReportDiffOptions& options,
                    const std::string& section, DiffBuilder& diff, const Emit& emit) {
  auto a = lhs.begin();
  auto b = rhs.begin();
  while (a != lhs.end() || b != rhs.end()) {
    if (b == rhs.end() || (a != lhs.end() && a->first < b->first)) {
      if (!Ignored(a->first, options.ignore_metric_prefixes)) {
        diff.Missing(section + "." + a->first, /*in_lhs=*/true);
      }
      ++a;
      continue;
    }
    if (a == lhs.end() || b->first < a->first) {
      if (!Ignored(b->first, options.ignore_metric_prefixes)) {
        diff.Missing(section + "." + b->first, /*in_lhs=*/false);
      }
      ++b;
      continue;
    }
    if (!Ignored(a->first, options.ignore_metric_prefixes)) {
      emit(section + "." + a->first, a->second, b->second);
    }
    ++a;
    ++b;
  }
}

void DiffMetrics(const ClusterReport& lhs, const ClusterReport& rhs,
                 const ReportDiffOptions& options, DiffBuilder& diff) {
  const auto scalar = [&](const std::string& path, int64_t a, int64_t b) {
    diff.Field(path, a, b, options.metric_default);
  };
  DiffMetricMaps(lhs.metrics.counters, rhs.metrics.counters, options, "counters", diff, scalar);
  DiffMetricMaps(lhs.metrics.gauges, rhs.metrics.gauges, options, "gauges", diff, scalar);
  DiffMetricMaps(lhs.metrics.histograms, rhs.metrics.histograms, options, "histograms", diff,
                 [&](const std::string& path, const MetricsSnapshot::HistogramStats& a,
                     const MetricsSnapshot::HistogramStats& b) {
                   diff.Field(path + ".count", a.count, b.count, options.metric_default);
                   diff.Field(path + ".p50", a.p50, b.p50, options.metric_default);
                   diff.Field(path + ".p99", a.p99, b.p99, options.metric_default);
                   diff.Field(path + ".max", a.max, b.max, options.metric_default);
                 });
}

void DiffTimeline(const ClusterReport& lhs, const ClusterReport& rhs,
                  const ReportDiffOptions& options, DiffBuilder& diff) {
  if (lhs.timeline.has_value() != rhs.timeline.has_value()) {
    diff.Missing("timeline", /*in_lhs=*/lhs.timeline.has_value());
    return;
  }
  if (!lhs.timeline.has_value()) {
    return;
  }
  const TimelineReport& a = *lhs.timeline;
  const TimelineReport& b = *rhs.timeline;
  diff.Exact("timeline.window_us", a.window_us, b.window_us);
  diff.Exact("timeline.windows", a.windows, b.windows);
  const size_t rows = std::min(a.qos.size(), b.qos.size());
  if (a.qos.size() != b.qos.size()) {
    diff.Exact("timeline.qos.size", static_cast<int64_t>(a.qos.size()),
               static_cast<int64_t>(b.qos.size()));
  }
  for (size_t i = 0; i < rows; ++i) {
    const QosWindowRow& wa = a.qos[i];
    const QosWindowRow& wb = b.qos[i];
    const std::string path = "timeline.qos[" + std::to_string(i) + "]";
    diff.Exact(path + ".window", wa.window, wb.window);
    diff.Exact(path + ".end_us", wa.end_us, wb.end_us);
    diff.Field(path + ".packets", wa.packets, wb.packets, options.timeline_counts);
    diff.Field(path + ".late_packets", wa.late_packets, wb.late_packets,
               options.timeline_counts);
    diff.Field(path + ".lateness_p50_us", wa.lateness_p50_us, wb.lateness_p50_us,
               options.timeline_us);
    diff.Field(path + ".lateness_p99_us", wa.lateness_p99_us, wb.lateness_p99_us,
               options.timeline_us);
    diff.Field(path + ".lateness_max_us", wa.lateness_max_us, wb.lateness_max_us,
               options.timeline_us);
    diff.Field(path + ".max_gap_us", wa.max_gap_us, wb.max_gap_us, options.timeline_us);
    diff.Field(path + ".pending_depth", wa.pending_depth, wb.pending_depth,
               options.timeline_counts);
    diff.Field(path + ".cache_hits", wa.cache_hits, wb.cache_hits, options.timeline_counts);
    diff.Field(path + ".cache_misses", wa.cache_misses, wb.cache_misses,
               options.timeline_counts);
  }
  std::map<std::string, const SloBreachReport*> right;
  for (const SloBreachReport& slo : b.slos) {
    right[slo.name] = &slo;
  }
  for (const SloBreachReport& sa : a.slos) {
    const std::string path = "timeline.slos[" + sa.name + "]";
    auto it = right.find(sa.name);
    if (it == right.end()) {
      diff.Missing(path, /*in_lhs=*/true);
      continue;
    }
    const SloBreachReport& sb = *it->second;
    right.erase(it);
    diff.Exact(path + ".threshold", sa.threshold, sb.threshold);
    diff.Exact(path + ".min_breach_windows", sa.min_breach_windows, sb.min_breach_windows);
    diff.Exact(path + ".windows_evaluated", sa.windows_evaluated, sb.windows_evaluated);
    diff.Field(path + ".breach_windows", sa.breach_windows, sb.breach_windows,
               options.timeline_counts);
    diff.Field(path + ".breach_episodes", sa.breach_episodes, sb.breach_episodes,
               options.timeline_counts);
    diff.Field(path + ".first_breach_us", sa.first_breach_us, sb.first_breach_us,
               options.timeline_us);
    diff.Field(path + ".last_breach_us", sa.last_breach_us, sb.last_breach_us,
               options.timeline_us);
    diff.Field(path + ".worst_window", sa.worst_window, sb.worst_window,
               options.timeline_counts);
    diff.Field(path + ".worst_value", sa.worst_value, sb.worst_value, options.timeline_us);
    diff.Field(path + ".breached_us", sa.breached_us, sb.breached_us, options.timeline_us);
  }
  for (const auto& [name, slo] : right) {
    diff.Missing("timeline.slos[" + name + "]", /*in_lhs=*/false);
  }
}

}  // namespace

ReportDiff DiffClusterReports(const ClusterReport& lhs, const ClusterReport& rhs,
                              const ReportDiffOptions& options) {
  ReportDiff out;
  DiffBuilder diff(&out);
  DiffStreams(lhs, rhs, options, diff);
  DiffPorts(lhs, rhs, options, diff);
  if (options.compare_metrics) {
    DiffMetrics(lhs, rhs, options, diff);
  }
  if (options.compare_timeline) {
    DiffTimeline(lhs, rhs, options, diff);
  }
  return out;
}

std::string ReportDiff::ToText() const {
  std::ostringstream out;
  if (entries.empty()) {
    out << "reports match\n";
    return out.str();
  }
  for (const Entry& entry : entries) {
    out << entry.field << ": " << entry.lhs << " vs " << entry.rhs;
    if (!entry.note.empty()) {
      out << " (" << entry.note << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace calliope
