#include "src/obs/report.h"

#include "src/util/table.h"

namespace calliope {
namespace {

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string ClusterReport::ToText() const {
  std::string out = "== cluster report ==\n";
  out += metrics.ToText();
  if (!streams.empty()) {
    AsciiTable table({"stream", "group", "msu", "disk", "file", "mode", "state", "pkts", "late",
                      "p50us", "p99us", "maxus"});
    for (const auto& s : streams) {
      table.AddRow({std::to_string(s.stream_id), std::to_string(s.group_id), s.msu,
                    std::to_string(s.disk), s.file, s.recording ? "rec" : "play",
                    s.finished ? "done" : "live", std::to_string(s.packets_sent),
                    std::to_string(s.packets_late), std::to_string(s.p50_lateness_us),
                    std::to_string(s.p99_lateness_us), std::to_string(s.max_lateness_us)});
    }
    out += table.Render();
  }
  if (!ports.empty()) {
    AsciiTable table({"client", "port", "pkts", "ooo", "glitches", "maxgapus"});
    for (const auto& p : ports) {
      table.AddRow({p.client, p.port, std::to_string(p.packets_received),
                    std::to_string(p.out_of_order), std::to_string(p.glitches),
                    std::to_string(p.max_gap_us)});
    }
    out += table.Render();
  }
  return out;
}

std::string ClusterReport::ToJson() const {
  std::string out = "{\"metrics\":" + metrics.ToJson() + ",\"streams\":[";
  bool first = true;
  for (const auto& s : streams) {
    if (!first) out += ',';
    first = false;
    out += "{\"stream\":" + std::to_string(s.stream_id) + ",\"group\":" +
           std::to_string(s.group_id) + ",\"msu\":";
    AppendJsonString(out, s.msu);
    out += ",\"disk\":" + std::to_string(s.disk) + ",\"file\":";
    AppendJsonString(out, s.file);
    out += std::string(",\"recording\":") + (s.recording ? "true" : "false") +
           ",\"finished\":" + (s.finished ? "true" : "false") +
           ",\"packets_sent\":" + std::to_string(s.packets_sent) +
           ",\"packets_late\":" + std::to_string(s.packets_late) +
           ",\"p50_lateness_us\":" + std::to_string(s.p50_lateness_us) +
           ",\"p99_lateness_us\":" + std::to_string(s.p99_lateness_us) +
           ",\"max_lateness_us\":" + std::to_string(s.max_lateness_us) + "}";
  }
  out += "],\"ports\":[";
  first = true;
  for (const auto& p : ports) {
    if (!first) out += ',';
    first = false;
    out += "{\"client\":";
    AppendJsonString(out, p.client);
    out += ",\"port\":";
    AppendJsonString(out, p.port);
    out += ",\"packets_received\":" + std::to_string(p.packets_received) +
           ",\"out_of_order\":" + std::to_string(p.out_of_order) +
           ",\"glitches\":" + std::to_string(p.glitches) +
           ",\"max_gap_us\":" + std::to_string(p.max_gap_us) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace calliope
