#include "src/obs/report.h"

#include "src/util/table.h"

namespace calliope {
namespace {

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string TimelineReport::ToText() const {
  std::string out = "-- timeline: " + std::to_string(windows) + " windows x " +
                    std::to_string(window_us) + "us --\n";
  if (!slos.empty()) {
    AsciiTable table({"slo", "threshold", "minwin", "evaluated", "breachwin", "episodes",
                      "firstus", "lastus", "worstwin", "worstval", "breachedus"});
    for (const auto& s : slos) {
      table.AddRow({s.name, std::to_string(s.threshold), std::to_string(s.min_breach_windows),
                    std::to_string(s.windows_evaluated), std::to_string(s.breach_windows),
                    std::to_string(s.breach_episodes), std::to_string(s.first_breach_us),
                    std::to_string(s.last_breach_us), std::to_string(s.worst_window),
                    std::to_string(s.worst_value), std::to_string(s.breached_us)});
    }
    out += table.Render();
  }
  if (!qos.empty()) {
    AsciiTable table({"win", "endus", "pkts", "late", "p50us", "p99us", "maxus", "gapus",
                      "pending", "hits", "misses"});
    for (const auto& w : qos) {
      table.AddRow({std::to_string(w.window), std::to_string(w.end_us),
                    std::to_string(w.packets), std::to_string(w.late_packets),
                    std::to_string(w.lateness_p50_us), std::to_string(w.lateness_p99_us),
                    std::to_string(w.lateness_max_us), std::to_string(w.max_gap_us),
                    std::to_string(w.pending_depth), std::to_string(w.cache_hits),
                    std::to_string(w.cache_misses)});
    }
    out += table.Render();
  }
  return out;
}

std::string TimelineReport::ToJson() const {
  std::string out = "{\"window_us\":" + std::to_string(window_us) +
                    ",\"windows\":" + std::to_string(windows) + ",\"qos\":[";
  bool first = true;
  for (const auto& w : qos) {
    if (!first) out += ',';
    first = false;
    out += "{\"window\":" + std::to_string(w.window) + ",\"end_us\":" + std::to_string(w.end_us) +
           ",\"packets\":" + std::to_string(w.packets) +
           ",\"late_packets\":" + std::to_string(w.late_packets) +
           ",\"lateness_p50_us\":" + std::to_string(w.lateness_p50_us) +
           ",\"lateness_p99_us\":" + std::to_string(w.lateness_p99_us) +
           ",\"lateness_max_us\":" + std::to_string(w.lateness_max_us) +
           ",\"max_gap_us\":" + std::to_string(w.max_gap_us) +
           ",\"pending_depth\":" + std::to_string(w.pending_depth) +
           ",\"cache_hits\":" + std::to_string(w.cache_hits) +
           ",\"cache_misses\":" + std::to_string(w.cache_misses) + "}";
  }
  out += "],\"slos\":[";
  first = true;
  for (const auto& s : slos) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, s.name);
    out += ",\"threshold\":" + std::to_string(s.threshold) +
           ",\"min_breach_windows\":" + std::to_string(s.min_breach_windows) +
           ",\"windows_evaluated\":" + std::to_string(s.windows_evaluated) +
           ",\"breach_windows\":" + std::to_string(s.breach_windows) +
           ",\"breach_episodes\":" + std::to_string(s.breach_episodes) +
           ",\"first_breach_us\":" + std::to_string(s.first_breach_us) +
           ",\"last_breach_us\":" + std::to_string(s.last_breach_us) +
           ",\"worst_window\":" + std::to_string(s.worst_window) +
           ",\"worst_value\":" + std::to_string(s.worst_value) +
           ",\"breached_us\":" + std::to_string(s.breached_us) + "}";
  }
  out += "]}";
  return out;
}

std::string ClusterReport::ToText() const {
  std::string out = "== cluster report ==\n";
  out += metrics.ToText();
  if (!streams.empty()) {
    AsciiTable table({"stream", "group", "msu", "disk", "file", "mode", "state", "pkts", "late",
                      "p50us", "p99us", "maxus"});
    for (const auto& s : streams) {
      table.AddRow({std::to_string(s.stream_id), std::to_string(s.group_id), s.msu,
                    std::to_string(s.disk), s.file, s.recording ? "rec" : "play",
                    s.finished ? "done" : "live", std::to_string(s.packets_sent),
                    std::to_string(s.packets_late), std::to_string(s.p50_lateness_us),
                    std::to_string(s.p99_lateness_us), std::to_string(s.max_lateness_us)});
    }
    out += table.Render();
  }
  if (!ports.empty()) {
    AsciiTable table({"client", "port", "pkts", "ooo", "glitches", "maxgapus"});
    for (const auto& p : ports) {
      table.AddRow({p.client, p.port, std::to_string(p.packets_received),
                    std::to_string(p.out_of_order), std::to_string(p.glitches),
                    std::to_string(p.max_gap_us)});
    }
    out += table.Render();
  }
  if (timeline.has_value()) {
    out += timeline->ToText();
  }
  return out;
}

std::string ClusterReport::ToJson() const {
  std::string out = "{\"metrics\":" + metrics.ToJson() + ",\"streams\":[";
  bool first = true;
  for (const auto& s : streams) {
    if (!first) out += ',';
    first = false;
    out += "{\"stream\":" + std::to_string(s.stream_id) + ",\"group\":" +
           std::to_string(s.group_id) + ",\"msu\":";
    AppendJsonString(out, s.msu);
    out += ",\"disk\":" + std::to_string(s.disk) + ",\"file\":";
    AppendJsonString(out, s.file);
    out += std::string(",\"recording\":") + (s.recording ? "true" : "false") +
           ",\"finished\":" + (s.finished ? "true" : "false") +
           ",\"packets_sent\":" + std::to_string(s.packets_sent) +
           ",\"packets_late\":" + std::to_string(s.packets_late) +
           ",\"p50_lateness_us\":" + std::to_string(s.p50_lateness_us) +
           ",\"p99_lateness_us\":" + std::to_string(s.p99_lateness_us) +
           ",\"max_lateness_us\":" + std::to_string(s.max_lateness_us) + "}";
  }
  out += "],\"ports\":[";
  first = true;
  for (const auto& p : ports) {
    if (!first) out += ',';
    first = false;
    out += "{\"client\":";
    AppendJsonString(out, p.client);
    out += ",\"port\":";
    AppendJsonString(out, p.port);
    out += ",\"packets_received\":" + std::to_string(p.packets_received) +
           ",\"out_of_order\":" + std::to_string(p.out_of_order) +
           ",\"glitches\":" + std::to_string(p.glitches) +
           ",\"max_gap_us\":" + std::to_string(p.max_gap_us) + "}";
  }
  out += "]";
  if (timeline.has_value()) {
    out += ",\"timeline\":" + timeline->ToJson();
  }
  out += "}";
  return out;
}

}  // namespace calliope
