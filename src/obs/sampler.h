// Continuous telemetry: simulated-time metric timelines, windowed QoS
// aggregation, and declarative SLO monitors (DESIGN.md §5.7).
//
// The MetricsRegistry and ClusterReport are snapshot-at-end: a run that
// breaches its lateness budget for ten seconds mid-flight and then recovers
// looks identical to a clean run. The MetricsSampler closes that gap. On a
// configurable simulated-time cadence it snapshots the registry into
// per-instrument time series (counters as per-window deltas, gauges as point
// samples, histograms as per-window rows), aggregates the hot-path QoS
// signals the MSUs and clients feed into a QosAccumulator (per-window
// lateness quantiles, delivery-gap max, pending-queue depth, cache hit mix),
// and evaluates declarative SloSpecs at every tick, accumulating a breach log
// into the ClusterReport's timeline section.
//
// Observer-only, like everything else in src/obs: the sampler's tick event
// reads instruments and never feeds back into the simulation, so enabling it
// cannot perturb a deterministic run. Hot paths pay one null-check branch
// when no sampler is configured. Everything stored is integer-valued and
// emitted in sorted order, so equal-seed runs stay byte-identical.
#ifndef CALLIOPE_SRC_OBS_SAMPLER_H_
#define CALLIOPE_SRC_OBS_SAMPLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/histogram.h"
#include "src/util/status.h"

namespace calliope {

struct SamplerConfig {
  SamplerConfig() = default;

  // Sampling cadence on the simulated clock. Zero (the default) disables the
  // sampler entirely — no events scheduled, no series stored, no timeline in
  // the ClusterReport.
  SimTime period;
  // Hard stop after this many windows: the self-rescheduling tick would
  // otherwise keep an idle simulation's event queue nonempty forever.
  int64_t max_windows = 1 << 20;
};

// One declarative service-level objective, evaluated at every sampling tick.
// A window breaches when its signal value is strictly greater than
// `threshold`; a run of at least `min_breach_windows` consecutive breaching
// windows is a breach episode (shorter blips are ignored — the knob that
// separates a real fault window from one unlucky packet).
struct SloSpec {
  // What to measure each window. The QoS signals come from the windowed
  // accumulator (integer µs / counts); the last two evaluate an arbitrary
  // registry instrument by name.
  enum class Signal {
    kLatenessP50,    // per-window MSU send-lateness p50, µs
    kLatenessP99,    // per-window MSU send-lateness p99, µs
    kLatenessMax,    // per-window MSU send-lateness max, µs (clamped at 0)
    kMaxGap,         // per-window client inter-arrival gap max, µs
    kPendingDepth,   // coord.pending.depth point sample
    kCacheMissPct,   // 100 * misses / (hits + misses) this window, 0 when idle
    kCounterDelta,   // per-window delta of counter `metric`
    kGaugeValue,     // point sample of gauge `metric`
  };

  SloSpec() = default;

  std::string name;  // report key and slo.<name>.* metric stem; [a-z0-9_-]+
  Signal signal = Signal::kLatenessP99;
  std::string metric;  // instrument name for kCounterDelta / kGaugeValue
  int64_t threshold = 0;
  int64_t min_breach_windows = 1;
};

// The windowed QoS sink the delivery hot paths feed. MSUs record every
// packet's send lateness (both fidelities report through
// MsuStream::AccountSentPacket, so the feed is mode-agnostic); clients record
// every media inter-arrival gap. The sampler drains and resets it each tick.
// Call sites hold a raw pointer and null-check it, exactly like the cached
// metric instrument pointers — no sampler, no cost beyond the branch.
class QosAccumulator {
 public:
  QosAccumulator() = default;
  QosAccumulator(const QosAccumulator&) = delete;
  QosAccumulator& operator=(const QosAccumulator&) = delete;

  void RecordLateness(SimTime lateness) { window_lateness_.Record(lateness); }
  void RecordGap(SimTime gap) {
    if (gap > window_max_gap_) {
      window_max_gap_ = gap;
    }
  }

 private:
  friend class MetricsSampler;

  LatenessHistogram window_lateness_;
  SimTime window_max_gap_;
};

class MetricsSampler {
 public:
  // `trace` may be null. SloSpecs are evaluated in name order (sorted here)
  // so the report's slos section is deterministic regardless of config order.
  MetricsSampler(Simulator& sim, MetricsRegistry& metrics, TraceRecorder* trace,
                 SamplerConfig config, std::vector<SloSpec> slos);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  // Schedules the first tick one period from now. Publishes the sampler's own
  // instruments (obs.sampler.ticks, slo.<name>.breach_windows) eagerly so
  // they appear as zeros in snapshots taken before the first tick.
  void Start();

  QosAccumulator* qos() { return &qos_; }
  const SamplerConfig& config() const { return config_; }
  int64_t windows() const { return windows_; }

  // Per-instrument series, one entry per closed window, keyed by instrument
  // name. Counters (including pull-mode counters) store the per-window delta;
  // gauges the point sample at the tick. Instruments created mid-run are
  // backfilled with zeros so every series has `windows()` entries.
  const std::map<std::string, std::vector<int64_t>>& counter_deltas() const {
    return counter_deltas_;
  }
  const std::map<std::string, std::vector<int64_t>>& gauge_samples() const {
    return gauge_samples_;
  }
  // Histogram rows: per-window sample-count delta plus the cumulative
  // quantiles at the window's close (the registry histogram never resets; the
  // truly windowed lateness quantiles live in the QoS rows instead).
  struct HistogramRow {
    HistogramRow() = default;
    int64_t count_delta = 0;
    int64_t p50 = 0;
    int64_t p99 = 0;
    int64_t max = 0;
    bool operator==(const HistogramRow&) const = default;
  };
  const std::map<std::string, std::vector<HistogramRow>>& histogram_rows() const {
    return histogram_rows_;
  }
  const std::vector<QosWindowRow>& qos_windows() const { return qos_rows_; }
  // Per-window signal values for the SLO at `slos()[i]`, parallel to
  // qos_windows().
  const std::vector<SloSpec>& slos() const { return slos_; }
  const std::vector<int64_t>& slo_values(size_t i) const { return states_.at(i).values; }

  // Live breach probe: true while the named SLO monitor is inside a breach
  // episode (run >= min_breach_windows, not yet cleared). Unknown names read
  // as false. This is what the Coordinator's saturation governor polls.
  bool SloBreaching(const std::string& name) const;
  // True if any configured SLO monitor is currently breaching.
  bool AnySloBreaching() const;

  // The ClusterReport timeline section: QoS rows plus the accumulated breach
  // log per SLO, sorted by name.
  TimelineReport BuildTimelineReport() const;

  // Wide CSV for plotting: one row per window with the QoS columns followed
  // by one `slo.<name>` value column per spec (sorted by name).
  Status WriteCsv(const std::string& path) const;

 private:
  // Rolling breach bookkeeping for one SloSpec.
  struct SloState {
    SloState() = default;
    std::vector<int64_t> values;  // signal value per window
    int64_t run = 0;              // consecutive breaching windows ending now
    int64_t run_first_us = 0;     // end time of the run's first window
    int64_t run_worst_value = 0;
    int64_t run_worst_window = -1;
    bool breaching = false;       // run >= min_breach_windows
    SloBreachReport report;
    Counter* breach_windows_metric = nullptr;
  };

  void Tick();
  int64_t SignalValue(const SloSpec& spec, const QosWindowRow& row,
                      const MetricsSnapshot& snapshot) const;
  void EvaluateSlo(const SloSpec& spec, SloState& state, const QosWindowRow& row,
                   int64_t value);

  Simulator* sim_;
  MetricsRegistry* metrics_;
  TraceRecorder* trace_;
  SamplerConfig config_;
  std::vector<SloSpec> slos_;      // sorted by name
  std::vector<SloState> states_;   // parallel to slos_
  QosAccumulator qos_;
  Counter* ticks_metric_ = nullptr;
  EventToken tick_token_;
  int64_t windows_ = 0;
  MetricsSnapshot previous_;  // last tick's snapshot, for deltas
  std::map<std::string, std::vector<int64_t>> counter_deltas_;
  std::map<std::string, std::vector<int64_t>> gauge_samples_;
  std::map<std::string, std::vector<HistogramRow>> histogram_rows_;
  std::vector<QosWindowRow> qos_rows_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_OBS_SAMPLER_H_
