#include "src/obs/sampler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace calliope {

namespace {

int64_t CounterDelta(const MetricsSnapshot& now, const MetricsSnapshot& before,
                     const std::string& name) {
  const auto current = now.counters.find(name);
  if (current == now.counters.end()) {
    return 0;
  }
  const auto prior = before.counters.find(name);
  return current->second - (prior == before.counters.end() ? 0 : prior->second);
}

int64_t GaugeValue(const MetricsSnapshot& now, const std::string& name) {
  const auto it = now.gauges.find(name);
  return it == now.gauges.end() ? 0 : it->second;
}

// Appends `value` to the series for `name`, zero-backfilling instruments that
// first appeared mid-run so every series stays `windows` entries long.
template <typename T>
void AppendSample(std::map<std::string, std::vector<T>>& series, const std::string& name,
                  int64_t windows_before, T value) {
  std::vector<T>& samples = series[name];
  samples.resize(static_cast<size_t>(windows_before));
  samples.push_back(value);
}

}  // namespace

MetricsSampler::MetricsSampler(Simulator& sim, MetricsRegistry& metrics, TraceRecorder* trace,
                               SamplerConfig config, std::vector<SloSpec> slos)
    : sim_(&sim), metrics_(&metrics), trace_(trace), config_(std::move(config)),
      slos_(std::move(slos)) {
  std::sort(slos_.begin(), slos_.end(),
            [](const SloSpec& a, const SloSpec& b) { return a.name < b.name; });
  states_.resize(slos_.size());
}

MetricsSampler::~MetricsSampler() { tick_token_.Cancel(); }

void MetricsSampler::Start() {
  if (config_.period <= SimTime()) {
    return;
  }
  ticks_metric_ = &metrics_->counter("obs.sampler.ticks");
  for (size_t i = 0; i < slos_.size(); ++i) {
    states_[i].report.name = slos_[i].name;
    states_[i].report.threshold = slos_[i].threshold;
    states_[i].report.min_breach_windows = slos_[i].min_breach_windows;
    states_[i].breach_windows_metric =
        &metrics_->counter("slo." + slos_[i].name + ".breach_windows");
  }
  tick_token_ = sim_->ScheduleCancelableAt(sim_->Now() + config_.period, [this] { Tick(); });
}

void MetricsSampler::Tick() {
  // Bump before the snapshot so obs.sampler.ticks counts this window in its
  // own delta series (exactly one per window).
  ticks_metric_->Add();
  const MetricsSnapshot snapshot = metrics_->Snapshot();
  const int64_t windows_before = windows_;

  QosWindowRow row;
  row.window = windows_;
  row.end_us = sim_->Now().micros();
  row.packets = qos_.window_lateness_.total_count();
  row.late_packets = qos_.window_lateness_.CountAbove(SimTime());
  row.lateness_max_us = std::max<int64_t>(qos_.window_lateness_.MaxRecorded().micros(), 0);
  // Quantiles report the bin's upper edge; clamp to the exact window max so a
  // catastrophic window reports its true worst lateness, not the top edge of
  // an exponential bin.
  row.lateness_p50_us =
      std::min(qos_.window_lateness_.Quantile(0.5).micros(), row.lateness_max_us);
  row.lateness_p99_us =
      std::min(qos_.window_lateness_.Quantile(0.99).micros(), row.lateness_max_us);
  row.max_gap_us = qos_.window_max_gap_.micros();
  row.pending_depth = GaugeValue(snapshot, "coord.pending.depth");
  row.cache_hits = CounterDelta(snapshot, previous_, "sim.cache.interval_hits") +
                   CounterDelta(snapshot, previous_, "sim.cache.prefix_hits");
  row.cache_misses = CounterDelta(snapshot, previous_, "sim.cache.misses");
  qos_.window_lateness_ = LatenessHistogram();
  qos_.window_max_gap_ = SimTime();

  for (const auto& [name, value] : snapshot.counters) {
    AppendSample(counter_deltas_, name, windows_before,
                 value - (previous_.counters.count(name) ? previous_.counters.at(name) : 0));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    AppendSample(gauge_samples_, name, windows_before, value);
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    HistogramRow hist_row;
    const auto prior = previous_.histograms.find(name);
    hist_row.count_delta =
        stats.count - (prior == previous_.histograms.end() ? 0 : prior->second.count);
    hist_row.p50 = stats.p50;
    hist_row.p99 = stats.p99;
    hist_row.max = stats.max;
    AppendSample(histogram_rows_, name, windows_before, hist_row);
  }

  for (size_t i = 0; i < slos_.size(); ++i) {
    EvaluateSlo(slos_[i], states_[i], row, SignalValue(slos_[i], row, snapshot));
  }

  qos_rows_.push_back(row);
  previous_ = snapshot;
  ++windows_;
  if (windows_ < config_.max_windows) {
    tick_token_ = sim_->ScheduleCancelableAt(sim_->Now() + config_.period, [this] { Tick(); });
  }
}

int64_t MetricsSampler::SignalValue(const SloSpec& spec, const QosWindowRow& row,
                                    const MetricsSnapshot& snapshot) const {
  switch (spec.signal) {
    case SloSpec::Signal::kLatenessP50:
      return row.lateness_p50_us;
    case SloSpec::Signal::kLatenessP99:
      return row.lateness_p99_us;
    case SloSpec::Signal::kLatenessMax:
      return row.lateness_max_us;
    case SloSpec::Signal::kMaxGap:
      return row.max_gap_us;
    case SloSpec::Signal::kPendingDepth:
      return row.pending_depth;
    case SloSpec::Signal::kCacheMissPct: {
      const int64_t total = row.cache_hits + row.cache_misses;
      return total == 0 ? 0 : 100 * row.cache_misses / total;
    }
    case SloSpec::Signal::kCounterDelta:
      return CounterDelta(snapshot, previous_, spec.metric);
    case SloSpec::Signal::kGaugeValue:
      return GaugeValue(snapshot, spec.metric);
  }
  return 0;
}

void MetricsSampler::EvaluateSlo(const SloSpec& spec, SloState& state, const QosWindowRow& row,
                                 int64_t value) {
  state.values.push_back(value);
  ++state.report.windows_evaluated;
  if (value <= spec.threshold) {
    if (state.breaching && trace_ != nullptr) {
      trace_->Instant("slo", "slo", "slo-clear:" + spec.name,
                      "after " + std::to_string(state.run) + " breach windows");
    }
    state.run = 0;
    state.breaching = false;
    return;
  }
  if (state.run == 0) {
    state.run_first_us = row.end_us;
    state.run_worst_value = value;
    state.run_worst_window = row.window;
  } else if (value > state.run_worst_value) {
    state.run_worst_value = value;
    state.run_worst_window = row.window;
  }
  ++state.run;
  if (!state.breaching && state.run >= spec.min_breach_windows) {
    // The run qualifies as an episode: count its windows retroactively.
    state.breaching = true;
    ++state.report.breach_episodes;
    state.report.breach_windows += state.run;
    state.breach_windows_metric->Add(state.run);
    if (state.report.first_breach_us == 0) {
      state.report.first_breach_us = state.run_first_us;
    }
    if (trace_ != nullptr) {
      trace_->Instant("slo", "slo", "slo-breach:" + spec.name,
                      "value " + std::to_string(value) + " > threshold " +
                          std::to_string(spec.threshold));
    }
  } else if (state.breaching) {
    ++state.report.breach_windows;
    state.breach_windows_metric->Add();
  }
  if (state.breaching) {
    state.report.last_breach_us = row.end_us;
    if (state.run_worst_value > state.report.worst_value ||
        state.report.worst_window < 0) {
      state.report.worst_value = state.run_worst_value;
      state.report.worst_window = state.run_worst_window;
    }
  }
}

bool MetricsSampler::SloBreaching(const std::string& name) const {
  for (size_t i = 0; i < slos_.size(); ++i) {
    if (slos_[i].name == name) {
      return states_[i].breaching;
    }
  }
  return false;
}

bool MetricsSampler::AnySloBreaching() const {
  for (const SloState& state : states_) {
    if (state.breaching) {
      return true;
    }
  }
  return false;
}

TimelineReport MetricsSampler::BuildTimelineReport() const {
  TimelineReport timeline;
  timeline.window_us = config_.period.micros();
  timeline.windows = windows_;
  timeline.qos = qos_rows_;
  for (const SloState& state : states_) {
    SloBreachReport report = state.report;
    report.breached_us = report.breach_windows * timeline.window_us;
    timeline.slos.push_back(std::move(report));
  }
  return timeline;
}

Status MetricsSampler::WriteCsv(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot write " + path);
  }
  std::fprintf(file,
               "window,end_us,packets,late_packets,lateness_p50_us,lateness_p99_us,"
               "lateness_max_us,max_gap_us,pending_depth,cache_hits,cache_misses");
  for (const SloSpec& spec : slos_) {
    std::fprintf(file, ",slo.%s", spec.name.c_str());
  }
  std::fprintf(file, "\n");
  for (size_t w = 0; w < qos_rows_.size(); ++w) {
    const QosWindowRow& row = qos_rows_[w];
    std::fprintf(file, "%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld",
                 static_cast<long long>(row.window), static_cast<long long>(row.end_us),
                 static_cast<long long>(row.packets), static_cast<long long>(row.late_packets),
                 static_cast<long long>(row.lateness_p50_us),
                 static_cast<long long>(row.lateness_p99_us),
                 static_cast<long long>(row.lateness_max_us),
                 static_cast<long long>(row.max_gap_us),
                 static_cast<long long>(row.pending_depth),
                 static_cast<long long>(row.cache_hits),
                 static_cast<long long>(row.cache_misses));
    for (const SloState& state : states_) {
      std::fprintf(file, ",%lld", static_cast<long long>(state.values[w]));
    }
    std::fprintf(file, "\n");
  }
  std::fclose(file);
  return OkStatus();
}

}  // namespace calliope
