#include "src/obs/trace.h"

#include <cstdio>
#include <utility>

namespace calliope {
namespace {

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

// trace_event timestamps are microseconds; keep nanosecond precision as a
// fixed three-decimal fraction so events never collapse or reorder.
void AppendMicros(std::string& out, SimTime t) {
  char buf[40];
  const int64_t nanos = t.nanos();
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(nanos / 1000),
                static_cast<long long>(nanos % 1000));
  out += buf;
}

}  // namespace

int TraceRecorder::TrackPid(const std::string& track) {
  const auto it = track_pids_.find(track);
  if (it != track_pids_.end()) {
    return it->second;
  }
  const int pid = static_cast<int>(track_names_.size());
  track_pids_[track] = pid;
  track_names_.push_back(track);
  return pid;
}

void TraceRecorder::Span(const std::string& track, const std::string& category,
                         const std::string& name, SimTime start, const std::string& detail) {
  if (!enabled_) {
    return;
  }
  SpanAt(track, category, name, start, sim_->Now() - start, detail);
}

void TraceRecorder::SpanAt(const std::string& track, const std::string& category,
                           const std::string& name, SimTime start, SimTime duration,
                           const std::string& detail) {
  if (!enabled_) {
    return;
  }
  Event event;
  event.phase = 'X';
  event.pid = TrackPid(track);
  event.category = category;
  event.name = name;
  event.detail = detail;
  event.start = start;
  event.duration = duration;
  events_.push_back(std::move(event));
}

void TraceRecorder::Instant(const std::string& track, const std::string& category,
                            const std::string& name, const std::string& detail) {
  if (!enabled_) {
    return;
  }
  Event event;
  event.phase = 'i';
  event.pid = TrackPid(track);
  event.category = category;
  event.name = name;
  event.detail = detail;
  event.start = sim_->Now();
  events_.push_back(std::move(event));
}

std::string TraceRecorder::ToJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (size_t pid = 0; pid < track_names_.size(); ++pid) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"name\":\"process_name\",\"args\":{\"name\":";
    AppendJsonString(out, track_names_[pid]);
    out += "}}";
  }
  for (const auto& event : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":" + std::to_string(event.pid) + ",\"tid\":0,\"cat\":";
    AppendJsonString(out, event.category);
    out += ",\"name\":";
    AppendJsonString(out, event.name);
    out += ",\"ts\":";
    AppendMicros(out, event.start);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      AppendMicros(out, event.duration);
    } else {
      out += ",\"s\":\"p\"";  // process-scoped instant
    }
    if (!event.detail.empty()) {
      out += ",\"args\":{\"detail\":";
      AppendJsonString(out, event.detail);
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status(StatusCode::kUnavailable, "cannot open trace file " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status(StatusCode::kDataLoss, "short write to trace file " + path);
  }
  return OkStatus();
}

}  // namespace calliope
