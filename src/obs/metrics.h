// MetricsRegistry: named counters, gauges, and histograms for the cluster.
//
// The registry is the single flat namespace every subsystem publishes into
// (catalog in docs/OBSERVABILITY.md). Instruments are created on first use
// and live for the registry's lifetime, so hot paths cache the returned
// pointer/reference and bump it without a map lookup. All state is integer
// (counts, nanos, kbits, bytes) — Snapshot() is therefore bit-identical
// across runs with equal seeds, which the chaos determinism tests assert.
//
// Single-threaded by design: the simulator runs every task on one thread, so
// "lock-free" here means literally free of locks rather than atomic.
#ifndef CALLIOPE_SRC_OBS_METRICS_H_
#define CALLIOPE_SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/util/histogram.h"

namespace calliope {

// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  void Add(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Point-in-time level that can move both ways.
class Gauge {
 public:
  Gauge() = default;
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Value-typed, ordered view of every instrument at one instant. Ordered maps
// (not unordered) so text/JSON renderings are stable across runs.
struct MetricsSnapshot {
  struct HistogramStats {
    HistogramStats() = default;
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    int64_t p50 = 0;
    int64_t p99 = 0;
    bool operator==(const HistogramStats&) const = default;
  };

  MetricsSnapshot() = default;

  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  std::string ToText() const;
  std::string ToJson() const;
  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Returned references are stable for the registry's life.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Registers a pull-mode gauge evaluated at Snapshot() time. Re-registering
  // a name replaces the previous callback (idempotent across MSU restarts).
  // The callback must outlive the registry or be replaced before it dangles.
  void SetGaugeCallback(const std::string& name, std::function<int64_t()> fn);

  // Pull-mode counter: like SetGaugeCallback but the value lands in the
  // snapshot's counters section. For subsystems that already keep their own
  // monotonic tallies — publishing them as counters (not gauges) is what
  // makes per-window deltas meaningful to the MetricsSampler.
  void SetCounterCallback(const std::string& name, std::function<int64_t()> fn);

  MetricsSnapshot Snapshot() const;

 private:
  // unique_ptr values so instrument addresses survive map rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<int64_t()>> gauge_callbacks_;
  std::map<std::string, std::function<int64_t()>> counter_callbacks_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_OBS_METRICS_H_
