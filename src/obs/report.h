// ClusterReport: one value-typed QoS snapshot of a whole installation.
//
// Installation::BuildClusterReport() fills it from the metrics registry plus
// per-stream lateness timelines (MSU side) and per-port delivery stats
// (client side). Everything is integer-valued and sorted, so reports from
// runs with equal seeds compare bit-identical — the chaos harness asserts
// exactly that, and dumps ToText()/ToJson() on invariant failures.
#ifndef CALLIOPE_SRC_OBS_REPORT_H_
#define CALLIOPE_SRC_OBS_REPORT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace calliope {

// One stream's delivery timeline as the serving MSU saw it. Lateness
// quantiles follow the LatenessHistogram underflow convention: early packets
// count as exactly on time.
struct StreamQosReport {
  StreamQosReport() = default;

  int64_t stream_id = 0;
  int64_t group_id = 0;
  std::string msu;
  int disk = 0;
  std::string file;
  bool recording = false;
  bool finished = false;
  int64_t packets_sent = 0;
  int64_t packets_late = 0;  // lateness strictly > 0 (sent after deadline)
  int64_t p50_lateness_us = 0;
  int64_t p99_lateness_us = 0;
  int64_t max_lateness_us = 0;

  bool operator==(const StreamQosReport&) const = default;
};

// One client display port's receive-side view. `max_gap_us` is the largest
// inter-arrival gap between consecutive media packets — the visible delivery
// gap when a stream fails over mid-play.
struct PortQosReport {
  PortQosReport() = default;

  std::string client;
  std::string port;
  int64_t packets_received = 0;
  int64_t out_of_order = 0;
  int64_t glitches = 0;
  int64_t max_gap_us = 0;

  bool operator==(const PortQosReport&) const = default;
};

// One sampler window's cluster-wide QoS aggregate (MetricsSampler,
// src/obs/sampler.h). Lateness quantiles cover only the packets sent inside
// this window (unlike the cumulative per-stream histograms above), so a
// 10-second breach mid-run is visible even when the run as a whole looks
// clean. All integer µs/counts for bit-identical equal-seed runs.
struct QosWindowRow {
  QosWindowRow() = default;

  int64_t window = 0;  // 0-based window index
  int64_t end_us = 0;  // simulated time the window closed
  int64_t packets = 0;
  int64_t late_packets = 0;  // send lateness strictly > 0
  int64_t lateness_p50_us = 0;
  int64_t lateness_p99_us = 0;
  int64_t lateness_max_us = 0;   // clamped at 0 (early = on time)
  int64_t max_gap_us = 0;        // largest client inter-arrival gap this window
  int64_t pending_depth = 0;     // coord.pending.depth point sample at window end
  int64_t cache_hits = 0;        // sim.cache interval+prefix hits this window
  int64_t cache_misses = 0;

  bool operator==(const QosWindowRow&) const = default;
};

// Accumulated breach log for one SloSpec. A breach episode is a run of
// min_breach_windows or more consecutive windows whose signal exceeded the
// threshold; only windows inside episodes count as breach windows.
// Timestamps are window-end times (when the sampler observed the value).
struct SloBreachReport {
  SloBreachReport() = default;

  std::string name;
  int64_t threshold = 0;
  int64_t min_breach_windows = 1;
  int64_t windows_evaluated = 0;
  int64_t breach_windows = 0;
  int64_t breach_episodes = 0;
  int64_t first_breach_us = 0;  // 0 when no episode ever qualified
  int64_t last_breach_us = 0;
  int64_t worst_window = -1;    // index of the worst breach window, -1 if none
  int64_t worst_value = 0;
  int64_t breached_us = 0;      // breach_windows * window length

  bool operator==(const SloBreachReport&) const = default;
};

// The ClusterReport's optional continuous-telemetry section: one QoS row per
// sampler window plus the SLO breach log. Absent (and absent from ToJson /
// ToText) when no sampler was configured, so a sampler-free report is
// byte-identical to one from a build that never had the feature.
struct TimelineReport {
  TimelineReport() = default;

  int64_t window_us = 0;  // sampling period
  int64_t windows = 0;
  std::vector<QosWindowRow> qos;      // one row per window, in window order
  std::vector<SloBreachReport> slos;  // sorted by name

  std::string ToText() const;
  std::string ToJson() const;
  bool operator==(const TimelineReport&) const = default;
};

struct ClusterReport {
  ClusterReport() = default;

  MetricsSnapshot metrics;
  std::vector<StreamQosReport> streams;  // sorted by stream_id
  std::vector<PortQosReport> ports;      // sorted by (client, port)
  std::optional<TimelineReport> timeline;  // present only when a sampler ran

  std::string ToText() const;
  std::string ToJson() const;
  bool operator==(const ClusterReport&) const = default;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_OBS_REPORT_H_
