// ClusterReport: one value-typed QoS snapshot of a whole installation.
//
// Installation::BuildClusterReport() fills it from the metrics registry plus
// per-stream lateness timelines (MSU side) and per-port delivery stats
// (client side). Everything is integer-valued and sorted, so reports from
// runs with equal seeds compare bit-identical — the chaos harness asserts
// exactly that, and dumps ToText()/ToJson() on invariant failures.
#ifndef CALLIOPE_SRC_OBS_REPORT_H_
#define CALLIOPE_SRC_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace calliope {

// One stream's delivery timeline as the serving MSU saw it. Lateness
// quantiles follow the LatenessHistogram underflow convention: early packets
// count as exactly on time.
struct StreamQosReport {
  StreamQosReport() = default;

  int64_t stream_id = 0;
  int64_t group_id = 0;
  std::string msu;
  int disk = 0;
  std::string file;
  bool recording = false;
  bool finished = false;
  int64_t packets_sent = 0;
  int64_t packets_late = 0;  // lateness strictly > 0 (sent after deadline)
  int64_t p50_lateness_us = 0;
  int64_t p99_lateness_us = 0;
  int64_t max_lateness_us = 0;

  bool operator==(const StreamQosReport&) const = default;
};

// One client display port's receive-side view. `max_gap_us` is the largest
// inter-arrival gap between consecutive media packets — the visible delivery
// gap when a stream fails over mid-play.
struct PortQosReport {
  PortQosReport() = default;

  std::string client;
  std::string port;
  int64_t packets_received = 0;
  int64_t out_of_order = 0;
  int64_t glitches = 0;
  int64_t max_gap_us = 0;

  bool operator==(const PortQosReport&) const = default;
};

struct ClusterReport {
  ClusterReport() = default;

  MetricsSnapshot metrics;
  std::vector<StreamQosReport> streams;  // sorted by stream_id
  std::vector<PortQosReport> ports;      // sorted by (client, port)

  std::string ToText() const;
  std::string ToJson() const;
  bool operator==(const ClusterReport&) const = default;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_OBS_REPORT_H_
