#include "src/obs/metrics.h"

#include <utility>

namespace calliope {
namespace {

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

void MetricsRegistry::SetGaugeCallback(const std::string& name, std::function<int64_t()> fn) {
  gauge_callbacks_[name] = std::move(fn);
}

void MetricsRegistry::SetCounterCallback(const std::string& name, std::function<int64_t()> fn) {
  counter_callbacks_[name] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, fn] : counter_callbacks_) {
    snapshot.counters[name] = fn();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, fn] : gauge_callbacks_) {
    snapshot.gauges[name] = fn();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramStats stats;
    stats.count = histogram->count();
    stats.sum = histogram->sum();
    stats.min = histogram->min();
    stats.max = histogram->max();
    stats.p50 = histogram->Quantile(0.50);
    stats.p99 = histogram->Quantile(0.99);
    snapshot.histograms[name] = stats;
  }
  return snapshot;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, stats] : histograms) {
    out += name + " count=" + std::to_string(stats.count) + " sum=" + std::to_string(stats.sum) +
           " min=" + std::to_string(stats.min) + " max=" + std::to_string(stats.max) +
           " p50=" + std::to_string(stats.p50) + " p99=" + std::to_string(stats.p99) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':' + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':' + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ":{\"count\":" + std::to_string(stats.count) + ",\"sum\":" + std::to_string(stats.sum) +
           ",\"min\":" + std::to_string(stats.min) + ",\"max\":" + std::to_string(stats.max) +
           ",\"p50\":" + std::to_string(stats.p50) + ",\"p99\":" + std::to_string(stats.p99) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace calliope
