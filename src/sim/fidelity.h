// Per-stream delivery fidelity (hybrid simulation).
//
// The per-packet model walks every datagram through timers, the CPU, the
// memory bus and the NIC — faithful, but ~8 events per packet caps benches at
// a handful of MSUs. Steady-state CBR delivery carries no per-packet
// information worth paying an event for, so a stream may run in *flow* mode:
// one event per buffer refill advances the whole prefetched page, and the
// byte/lateness accounting is synthesized analytically from the delivery
// schedule and the 10 ms timer quantization.
//
// Fidelity is dynamic. Streams demote to per-packet around interesting
// moments (VCR ops, admission on their disk, disk faults, failover,
// congestion) and promote back after a quiet window, so tests that assert
// bit-identical behaviour keep it by simply never enabling flow mode.
// Promotion/demotion rules are documented in DESIGN.md §5.5.
#ifndef CALLIOPE_SRC_SIM_FIDELITY_H_
#define CALLIOPE_SRC_SIM_FIDELITY_H_

#include "src/util/units.h"

namespace calliope {

enum class Fidelity {
  kPacket,  // every datagram individually simulated (the default)
  kFlow,    // steady state advanced one buffer refill at a time
};

struct FidelityConfig {
  // kPacket: streams never promote (bit-identical legacy behaviour).
  // kFlow: eligible streams promote to flow mode after quiet_window.
  Fidelity default_mode = Fidelity::kPacket;
  // How long a stream must go without an interesting moment (VCR op,
  // admission on its disk, fault, congestion) before promoting to flow mode.
  SimTime quiet_window = SimTime::Seconds(2);
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_SIM_FIDELITY_H_
