// Fire-and-forget coroutine processes for the simulator.
//
// A `Task` coroutine starts eagerly and detaches: its frame destroys itself
// when the body finishes. While suspended it is owned by its park site (event
// queue or Condition), which destroys it if the simulation is torn down.
//
// Convention: processes that someone must wait for signal a Condition (or set
// a flag) before returning; there is deliberately no join on Task itself.
#ifndef CALLIOPE_SRC_SIM_TASK_H_
#define CALLIOPE_SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>

namespace calliope {

class Task {
 public:
  struct promise_type {
    Task get_return_object() { return Task{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_SIM_TASK_H_
