#include "src/sim/resource.h"

#include <cassert>
#include <utility>

namespace calliope {

Resource::Resource(Simulator& sim, std::string name)
    : sim_(&sim), name_(std::move(name)), stats_epoch_(sim.Now()) {}

void Resource::Submit(SimTime service, UniqueFunction<void()> done) {
  Enqueue(Request{service, std::move(done), OwnedCoro()});
}

void Resource::SubmitCoro(SimTime service, std::coroutine_handle<> handle) {
  Enqueue(Request{service, nullptr, OwnedCoro(handle)});
}

void Resource::Enqueue(Request request) {
  assert(request.service >= SimTime());
  queue_.push_back(std::move(request));
  if (!busy_) {
    BeginService();
  }
}

void Resource::BeginService() {
  assert(!busy_ && !queue_.empty());
  busy_ = true;
  current_started_ = sim_->Now();
  Request request = std::move(queue_.front());
  queue_.pop_front();
  const SimTime service = request.service;
  // The closure owns the request; if the simulation is torn down before the
  // completion event fires, OwnedCoro destroys the waiter's frame chain.
  sim_->ScheduleAfter(service, [this, request = std::move(request)]() mutable {
    busy_ = false;
    busy_accum_ += request.service;
    ++completed_;
    if (!queue_.empty()) {
      BeginService();
    }
    if (request.coro) {
      request.coro.Resume();
    } else if (request.done) {
      request.done();
    }
  });
}

SimTime Resource::BusyTime() const {
  SimTime busy = busy_accum_;
  if (busy_) {
    busy += sim_->Now() - current_started_;
  }
  return busy;
}

double Resource::Utilization() const {
  const SimTime elapsed = sim_->Now() - stats_epoch_;
  if (elapsed <= SimTime()) {
    return 0.0;
  }
  return BusyTime().seconds() / elapsed.seconds();
}

void Resource::ResetStats() {
  busy_accum_ = SimTime();
  stats_epoch_ = sim_->Now();
  if (busy_) {
    current_started_ = sim_->Now();
  }
  completed_ = 0;
}

Semaphore::Semaphore(Simulator& sim, int64_t initial) : sim_(&sim), count_(initial) {}

bool Semaphore::TryAcquire() {
  if (count_ > 0) {
    --count_;
    return true;
  }
  return false;
}

void Semaphore::Release() {
  if (!waiters_.empty()) {
    OwnedCoro waiter = std::move(waiters_.front());
    waiters_.pop_front();
    // The released permit transfers directly to the waiter; count_ unchanged.
    sim_->ScheduleResumeAt(sim_->Now(), waiter.Release());
    return;
  }
  ++count_;
}

}  // namespace calliope
