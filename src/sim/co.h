// Co<T>: a lazily-started, awaitable coroutine returning T.
//
// `Co` is the composable async-function type of the codebase: device models
// and server components expose operations as `Co<...>` which callers
// `co_await`. Top-level processes are fire-and-forget `Task`s (task.h).
//
// Ownership and teardown
// ----------------------
// At any suspension point, a chain of nested Co frames has exactly one
// *innermost* frame, and that frame is owned by its park site (the simulator
// event queue, a Condition wait list, a Resource queue, ...). Outer frames
// are reachable only through `continuation` links. Tearing down a park site
// destroys the innermost frame; the promise destructor then destroys its
// continuation, cascading outward, so an abandoned simulation reclaims whole
// call chains without leaks or double-frees. On the normal completion path
// the continuation link is cleared before the symmetric transfer, so the
// cascade only ever fires for frames cancelled mid-flight.
//
// Parameter rules (enforced by convention throughout the codebase)
// ----------------------------------------------------------------
// 1. Coroutines take parameters BY VALUE (or as pointers/references to
//    objects guaranteed to outlive the coroutine). Lazy start means the body
//    may run after call-site temporaries are destroyed, so reference
//    parameters bound to temporaries dangle.
// 2. Class types passed by value into a coroutine must NOT be aggregates:
//    GCC 12's coroutine parameter copy of aggregates is bitwise, which
//    corrupts SSO string pointers and shared_ptr reference counts. Declaring
//    any constructor (even `= default`) makes the copy well-formed. Types
//    with only trivially-copyable members (ints, enums, SimTime) are safe
//    either way.
#ifndef CALLIOPE_SRC_SIM_CO_H_
#define CALLIOPE_SRC_SIM_CO_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace calliope {

template <typename T>
class Co;

namespace co_internal {

template <typename T>
struct ValueStore {
  std::optional<T> value;
  void return_value(T v) { value = std::move(v); }
  T Take() { return std::move(*value); }
};

template <>
struct ValueStore<void> {
  void return_void() {}
  void Take() {}
};

}  // namespace co_internal

template <typename T = void>
class [[nodiscard]] Co {
 public:
  struct promise_type : co_internal::ValueStore<T> {
    Co* owner = nullptr;
    std::coroutine_handle<> continuation;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Clear the link first: once resumed, the caller owns itself again
        // and must not be destroyed by our promise destructor.
        auto cont = std::exchange(h.promise().continuation, nullptr);
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    [[noreturn]] void unhandled_exception() { std::terminate(); }

    ~promise_type() {
      if (owner != nullptr) {
        owner->handle_ = nullptr;  // frame is going away under the Co object
      }
      if (continuation) {
        continuation.destroy();  // cancelled mid-flight: cascade outward
      }
    }
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {
    if (handle_) {
      handle_.promise().owner = this;
    }
  }
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      Reset();
      handle_ = std::exchange(other.handle_, nullptr);
      if (handle_) {
        handle_.promise().owner = this;
      }
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;

  ~Co() { Reset(); }

  // Awaiting starts the coroutine (lazy start, symmetric transfer).
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    assert(handle_ && "Co awaited twice or after move");
    handle_.promise().continuation = cont;
    // Once running, the frame's ownership moves to whichever park site it
    // suspends at; the Co object must no longer destroy it.
    auto h = handle_;
    handle_.promise().owner = nullptr;
    handle_ = nullptr;
    started_handle_ = h;
    return h;
  }
  T await_resume() {
    auto h = std::coroutine_handle<promise_type>::from_address(started_handle_.address());
    T_or_void_guard guard{h};
    return h.promise().Take();
  }

 private:
  // Destroys the finished frame after Take() even if Take returns by value.
  struct T_or_void_guard {
    std::coroutine_handle<promise_type> h;
    ~T_or_void_guard() { h.destroy(); }
  };

  explicit Co(std::coroutine_handle<promise_type> handle) : handle_(handle) {
    handle_.promise().owner = this;
  }

  void Reset() {
    if (handle_) {
      handle_.promise().owner = nullptr;
      handle_.destroy();  // never started: just drop the frame
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{nullptr};
  std::coroutine_handle<> started_handle_{nullptr};
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_SIM_CO_H_
