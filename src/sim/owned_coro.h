// RAII ownership of a parked coroutine frame. Park sites (event queue,
// Condition wait lists, Resource queues) hold suspended frames through this
// wrapper so tearing the site down destroys the frame (and, via Co's promise
// destructor, its whole caller chain) instead of leaking it.
#ifndef CALLIOPE_SRC_SIM_OWNED_CORO_H_
#define CALLIOPE_SRC_SIM_OWNED_CORO_H_

#include <coroutine>
#include <utility>

namespace calliope {

class OwnedCoro {
 public:
  OwnedCoro() = default;
  explicit OwnedCoro(std::coroutine_handle<> handle) : handle_(handle) {}

  OwnedCoro(OwnedCoro&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  OwnedCoro& operator=(OwnedCoro&& other) noexcept {
    if (this != &other) {
      DestroyIfOwned();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  OwnedCoro(const OwnedCoro&) = delete;
  OwnedCoro& operator=(const OwnedCoro&) = delete;

  ~OwnedCoro() { DestroyIfOwned(); }

  // Transfers ownership out and resumes the frame.
  void Resume() {
    auto handle = std::exchange(handle_, nullptr);
    if (handle) {
      handle.resume();
    }
  }

  // Transfers ownership out without resuming.
  std::coroutine_handle<> Release() { return std::exchange(handle_, nullptr); }

  explicit operator bool() const { return handle_ != nullptr; }

 private:
  void DestroyIfOwned() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<> handle_{nullptr};
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_SIM_OWNED_CORO_H_
