// Condition: a broadcast wakeup point for coroutine processes.
//
// `co_await cond.Wait()` parks the process; `NotifyAll()` reschedules every
// parked process at the current simulated instant (never inline, so notifiers
// cannot reenter waiter state mid-operation). Typical use is the classic
// condition-variable loop:
//
//   while (!predicate()) { co_await cond.Wait(); }
//
// Parked frames are owned by the wait list and destroyed with it.
#ifndef CALLIOPE_SRC_SIM_CONDITION_H_
#define CALLIOPE_SRC_SIM_CONDITION_H_

#include <coroutine>
#include <utility>
#include <vector>

#include "src/sim/owned_coro.h"
#include "src/sim/simulator.h"

namespace calliope {

class Condition {
 public:
  explicit Condition(Simulator& sim) : sim_(&sim) {}

  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  auto Wait() {
    struct Awaiter {
      Condition* cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) {
        cond->waiters_.emplace_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void NotifyAll() {
    // Move out first: waiters resumed now may re-wait on this condition.
    std::vector<OwnedCoro> ready;
    ready.swap(waiters_);
    for (auto& waiter : ready) {
      sim_->ScheduleResumeAt(sim_->Now(), waiter.Release());
    }
  }

  void NotifyOne() {
    if (waiters_.empty()) {
      return;
    }
    OwnedCoro waiter = std::move(waiters_.front());
    waiters_.erase(waiters_.begin());
    sim_->ScheduleResumeAt(sim_->Now(), waiter.Release());
  }

  size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::vector<OwnedCoro> waiters_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_SIM_CONDITION_H_
