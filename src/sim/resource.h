// Resource: a single FIFO server with utilization accounting.
//
// Models serially-shared hardware: a CPU, a SCSI chain, a memory bus, a NIC
// wire. Work is submitted with a service duration; requests are served one at
// a time in submission order. Both a callback form (Submit) and an awaitable
// form (Use) are provided.
#ifndef CALLIOPE_SRC_SIM_RESOURCE_H_
#define CALLIOPE_SRC_SIM_RESOURCE_H_

#include <coroutine>
#include <deque>
#include <string>

#include "src/sim/owned_coro.h"
#include "src/sim/simulator.h"
#include "src/util/unique_function.h"

namespace calliope {

class Resource {
 public:
  Resource(Simulator& sim, std::string name);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  // Enqueues `service` time of work; `done` fires when it completes.
  void Submit(SimTime service, UniqueFunction<void()> done);

  // Awaitable form of Submit.
  auto Use(SimTime service) {
    struct Awaiter {
      Resource* resource;
      SimTime service;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) {
        resource->SubmitCoro(service, handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, service};
  }

  const std::string& name() const { return name_; }
  bool busy() const { return busy_; }
  size_t queue_length() const { return queue_.size(); }
  int64_t completed() const { return completed_; }

  // Total time the server has spent serving since construction (or the last
  // ResetStats). In-progress service counts up to Now().
  SimTime BusyTime() const;
  // BusyTime() / elapsed-since-ResetStats, in [0, 1].
  double Utilization() const;
  void ResetStats();

 private:
  struct Request {
    SimTime service;
    UniqueFunction<void()> done;  // exactly one of done / coro is set
    OwnedCoro coro;
  };

  void SubmitCoro(SimTime service, std::coroutine_handle<> handle);
  void Enqueue(Request request);
  void BeginService();

  Simulator* sim_;
  std::string name_;
  std::deque<Request> queue_;
  bool busy_ = false;
  SimTime current_started_;
  SimTime busy_accum_;
  SimTime stats_epoch_;
  int64_t completed_ = 0;
};

// Counting semaphore for coroutine processes (buffer pools, window limits).
class Semaphore {
 public:
  Semaphore(Simulator& sim, int64_t initial);

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto Acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept { return sem->TryAcquire(); }
      void await_suspend(std::coroutine_handle<> handle) {
        sem->waiters_.emplace_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  bool TryAcquire();
  void Release();

  int64_t count() const { return count_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  int64_t count_;
  std::deque<OwnedCoro> waiters_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_SIM_RESOURCE_H_
