// Deterministic discrete-event simulator.
//
// All timing in the reproduction flows through one Simulator: hardware models
// (disks, NICs, CPU stalls) schedule events, and component logic runs as
// C++20 coroutine processes awaiting simulated time or conditions (task.h).
//
// Determinism: events at equal times fire in scheduling order (a per-event
// sequence number breaks ties), so a run is a pure function of its inputs and
// RNG seeds.
//
// Coroutine ownership: a suspended process frame is owned by exactly one park
// site — the event queue (timed waits) or a Condition's wait list. Destroying
// the Simulator destroys any still-parked frames, so abandoned simulations do
// not leak.
#ifndef CALLIOPE_SRC_SIM_SIMULATOR_H_
#define CALLIOPE_SRC_SIM_SIMULATOR_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "src/util/unique_function.h"
#include "src/util/units.h"

namespace calliope {

class Simulator;

// Handle for cancelling a scheduled callback. Cancellation is cooperative:
// the event stays in the queue as a no-op until the simulator's lazy purge
// sweeps it out. Tokens are cheap value types (a slot index plus the slot's
// generation at schedule time) — no allocation per cancellable event.
class EventToken {
 public:
  EventToken() = default;

  void Cancel();
  bool valid() const { return sim_ != nullptr; }

 private:
  friend class Simulator;
  EventToken(Simulator* sim, uint32_t slot, uint64_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}
  Simulator* sim_ = nullptr;
  uint32_t slot_ = 0;
  uint64_t gen_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= Now()).
  void ScheduleAt(SimTime at, UniqueFunction<void()> fn);
  void ScheduleAfter(SimTime delay, UniqueFunction<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // As above but cancellable.
  EventToken ScheduleCancelableAt(SimTime at, UniqueFunction<void()> fn);

  // Schedules a coroutine resume (used by awaiters; not for general code).
  void ScheduleResumeAt(SimTime at, std::coroutine_handle<> handle);

  // Runs until the event queue is empty. Returns the number of events fired.
  int64_t Run();
  // Runs events with time <= deadline; the clock ends at `deadline` even if
  // the queue drains early.
  int64_t RunUntil(SimTime deadline);
  int64_t RunFor(SimTime span) { return RunUntil(now_ + span); }
  // Runs at most one event; returns false if the queue is empty.
  bool Step();

  bool Empty() const { return queue_.empty(); }
  int64_t events_fired() const { return events_fired_; }
  // Cancelled events still parked in the queue (purged lazily).
  int64_t cancelled_pending() const { return cancelled_pending_; }

  // Awaitable: resumes the awaiting coroutine after `delay` of simulated time.
  auto Delay(SimTime delay) {
    struct Awaiter {
      Simulator* sim;
      SimTime at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) { sim->ScheduleResumeAt(at, handle); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, now_ + delay};
  }

  // Awaitable: yields to any other events scheduled at the current instant.
  auto Yield() { return Delay(SimTime()); }

 private:
  friend class EventToken;

  static constexpr uint32_t kNoCancelSlot = UINT32_MAX;

  struct Event {
    SimTime at;
    uint64_t seq;
    UniqueFunction<void()> fn;              // exactly one of fn / coro is set
    std::coroutine_handle<> coro{nullptr};
    uint32_t cancel_slot = kNoCancelSlot;   // optional (cancellable events)
    uint64_t cancel_gen = 0;

    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  // Min-heap ordering over the vector-backed queue.
  static bool Later(const Event& a, const Event& b) { return a > b; }

  void Push(Event event);
  Event PopTop();
  void Fire(Event& event);
  // True while the event's token generation still matches (not cancelled).
  bool CancelLive(const Event& event) const {
    return event.cancel_slot == kNoCancelSlot ||
           cancel_gens_[event.cancel_slot] == event.cancel_gen;
  }
  void ReleaseCancelSlot(const Event& event);
  void Cancel(uint32_t slot, uint64_t gen);
  // Drops cancelled events from the queue and re-heapifies. Invoked lazily
  // when cancelled events pile up, so long-lived timer patterns (schedule,
  // cancel, reschedule) do not bloat the queue.
  void PurgeCancelled();

  SimTime now_;
  uint64_t next_seq_ = 0;
  int64_t events_fired_ = 0;
  std::vector<Event> queue_;  // heap ordered by Later()
  // Cancellation slots: gen mismatch == cancelled. Slots are recycled when
  // their event leaves the queue (fired, purged or drained).
  std::vector<uint64_t> cancel_gens_;
  std::vector<uint32_t> free_cancel_slots_;
  int64_t cancelled_pending_ = 0;
};

inline void EventToken::Cancel() {
  if (sim_ != nullptr) {
    sim_->Cancel(slot_, gen_);
    sim_ = nullptr;  // copies of this token see a generation mismatch
  }
}

}  // namespace calliope

#endif  // CALLIOPE_SRC_SIM_SIMULATOR_H_
