// Deterministic discrete-event simulator.
//
// All timing in the reproduction flows through one Simulator: hardware models
// (disks, NICs, CPU stalls) schedule events, and component logic runs as
// C++20 coroutine processes awaiting simulated time or conditions (task.h).
//
// Determinism: events at equal times fire in scheduling order (a per-event
// sequence number breaks ties), so a run is a pure function of its inputs and
// RNG seeds.
//
// Coroutine ownership: a suspended process frame is owned by exactly one park
// site — the event queue (timed waits) or a Condition's wait list. Destroying
// the Simulator destroys any still-parked frames, so abandoned simulations do
// not leak.
#ifndef CALLIOPE_SRC_SIM_SIMULATOR_H_
#define CALLIOPE_SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "src/util/unique_function.h"
#include "src/util/units.h"

namespace calliope {

// Handle for cancelling a scheduled callback. Cancellation is cooperative:
// the event stays in the queue but becomes a no-op.
class EventToken {
 public:
  EventToken() = default;

  void Cancel() {
    if (cancelled_) {
      *cancelled_ = true;
    }
  }
  bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Simulator;
  explicit EventToken(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= Now()).
  void ScheduleAt(SimTime at, UniqueFunction<void()> fn);
  void ScheduleAfter(SimTime delay, UniqueFunction<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // As above but cancellable.
  EventToken ScheduleCancelableAt(SimTime at, UniqueFunction<void()> fn);

  // Schedules a coroutine resume (used by awaiters; not for general code).
  void ScheduleResumeAt(SimTime at, std::coroutine_handle<> handle);

  // Runs until the event queue is empty. Returns the number of events fired.
  int64_t Run();
  // Runs events with time <= deadline; the clock ends at `deadline` even if
  // the queue drains early.
  int64_t RunUntil(SimTime deadline);
  int64_t RunFor(SimTime span) { return RunUntil(now_ + span); }
  // Runs at most one event; returns false if the queue is empty.
  bool Step();

  bool Empty() const { return queue_.empty(); }
  int64_t events_fired() const { return events_fired_; }

  // Awaitable: resumes the awaiting coroutine after `delay` of simulated time.
  auto Delay(SimTime delay) {
    struct Awaiter {
      Simulator* sim;
      SimTime at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) { sim->ScheduleResumeAt(at, handle); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, now_ + delay};
  }

  // Awaitable: yields to any other events scheduled at the current instant.
  auto Yield() { return Delay(SimTime()); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    UniqueFunction<void()> fn;              // exactly one of fn / coro is set
    std::coroutine_handle<> coro{nullptr};
    std::shared_ptr<bool> cancelled;       // optional

    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  void Push(Event event);
  void Fire(Event& event);

  SimTime now_;
  uint64_t next_seq_ = 0;
  int64_t events_fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_SIM_SIMULATOR_H_
