#include "src/sim/simulator.h"

#include <cassert>

namespace calliope {

Simulator::~Simulator() {
  // Destroy parked coroutine frames so abandoned simulations do not leak.
  // Draining the queue is enough: destroying a frame runs destructors of its
  // locals, which may own further conditions/frames, recursively.
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (event.coro) {
      event.coro.destroy();
    }
  }
}

void Simulator::Push(Event event) {
  assert(event.at >= now_ && "cannot schedule in the past");
  queue_.push(std::move(event));
}

void Simulator::ScheduleAt(SimTime at, UniqueFunction<void()> fn) {
  Push(Event{at, next_seq_++, std::move(fn), nullptr, nullptr});
}

EventToken Simulator::ScheduleCancelableAt(SimTime at, UniqueFunction<void()> fn) {
  auto cancelled = std::make_shared<bool>(false);
  Push(Event{at, next_seq_++, std::move(fn), nullptr, cancelled});
  return EventToken(std::move(cancelled));
}

void Simulator::ScheduleResumeAt(SimTime at, std::coroutine_handle<> handle) {
  Push(Event{at, next_seq_++, nullptr, handle, nullptr});
}

void Simulator::Fire(Event& event) {
  ++events_fired_;
  if (event.coro) {
    event.coro.resume();
    return;
  }
  if (event.cancelled != nullptr && *event.cancelled) {
    return;
  }
  event.fn();
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.at;
  Fire(event);
  return true;
}

int64_t Simulator::Run() {
  int64_t fired = 0;
  while (Step()) {
    ++fired;
  }
  return fired;
}

int64_t Simulator::RunUntil(SimTime deadline) {
  int64_t fired = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    Fire(event);
    ++fired;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace calliope
