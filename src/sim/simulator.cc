#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace calliope {

Simulator::~Simulator() {
  // Destroy parked coroutine frames so abandoned simulations do not leak.
  // Draining the queue is enough: destroying a frame runs destructors of its
  // locals, which may own further conditions/frames, recursively.
  while (!queue_.empty()) {
    Event event = PopTop();
    if (event.coro) {
      event.coro.destroy();
    }
  }
}

void Simulator::Push(Event event) {
  assert(event.at >= now_ && "cannot schedule in the past");
  queue_.push_back(std::move(event));
  std::push_heap(queue_.begin(), queue_.end(), Later);
}

Simulator::Event Simulator::PopTop() {
  std::pop_heap(queue_.begin(), queue_.end(), Later);
  Event event = std::move(queue_.back());
  queue_.pop_back();
  return event;
}

void Simulator::ScheduleAt(SimTime at, UniqueFunction<void()> fn) {
  Push(Event{at, next_seq_++, std::move(fn), nullptr});
}

EventToken Simulator::ScheduleCancelableAt(SimTime at, UniqueFunction<void()> fn) {
  uint32_t slot;
  if (!free_cancel_slots_.empty()) {
    slot = free_cancel_slots_.back();
    free_cancel_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(cancel_gens_.size());
    cancel_gens_.push_back(0);
  }
  const uint64_t gen = cancel_gens_[slot];
  Push(Event{at, next_seq_++, std::move(fn), nullptr, slot, gen});
  return EventToken(this, slot, gen);
}

void Simulator::ScheduleResumeAt(SimTime at, std::coroutine_handle<> handle) {
  Push(Event{at, next_seq_++, nullptr, handle});
}

void Simulator::ReleaseCancelSlot(const Event& event) {
  if (event.cancel_slot == kNoCancelSlot) {
    return;
  }
  if (cancel_gens_[event.cancel_slot] != event.cancel_gen) {
    --cancelled_pending_;  // this event had been cancelled while queued
  }
  // Bump the generation so stale tokens can never cancel a future event that
  // recycles this slot, then recycle it.
  cancel_gens_[event.cancel_slot] = event.cancel_gen + 1;
  free_cancel_slots_.push_back(event.cancel_slot);
}

void Simulator::Cancel(uint32_t slot, uint64_t gen) {
  if (slot >= cancel_gens_.size() || cancel_gens_[slot] != gen) {
    return;  // already fired, purged, or cancelled via another token copy
  }
  ++cancel_gens_[slot];
  ++cancelled_pending_;
  // Lazy purge: only when cancelled events dominate the queue is the O(n)
  // sweep worth it. Long-lived schedule/cancel/reschedule timer patterns
  // otherwise grow the queue without bound.
  if (cancelled_pending_ > 64 &&
      cancelled_pending_ > static_cast<int64_t>(queue_.size()) / 2) {
    PurgeCancelled();
  }
}

void Simulator::PurgeCancelled() {
  auto keep = queue_.begin();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!it->coro && !CancelLive(*it)) {
      ReleaseCancelSlot(*it);
      continue;
    }
    if (keep != it) {
      *keep = std::move(*it);
    }
    ++keep;
  }
  queue_.erase(keep, queue_.end());
  std::make_heap(queue_.begin(), queue_.end(), Later);
}

void Simulator::Fire(Event& event) {
  ++events_fired_;
  if (event.coro) {
    event.coro.resume();
    return;
  }
  const bool live = CancelLive(event);
  ReleaseCancelSlot(event);
  if (live) {
    event.fn();
  }
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  Event event = PopTop();
  now_ = event.at;
  Fire(event);
  return true;
}

int64_t Simulator::Run() {
  int64_t fired = 0;
  while (Step()) {
    ++fired;
  }
  return fired;
}

int64_t Simulator::RunUntil(SimTime deadline) {
  int64_t fired = 0;
  while (!queue_.empty() && queue_.front().at <= deadline) {
    Event event = PopTop();
    now_ = event.at;
    Fire(event);
    ++fired;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace calliope
