// Background cross-MSU rebalancing planner (DESIGN §5.8).
//
// The paper anticipates skewed popularity by hand: "we can make copies of
// popular content on several disks, but we must anticipate usage trends"
// (§2.3.3). This module closes that loop online: a periodic planner reads the
// title-popularity EWMA the sharing subsystem already maintains, the resource
// ledger's per-disk loads, and the pending-request queue, and decides which
// hot titles to copy to under-loaded MSUs and which cold dynamic replicas to
// demote. Execution (RPCs, ledger holds, oplog records) stays in the
// Coordinator; PlanRebalance itself is a pure function — same snapshot, same
// plan — so the chaos harness's equal-seed byte-identical guarantee extends
// to rebalancing decisions.
#ifndef CALLIOPE_SRC_REBALANCE_PLANNER_H_
#define CALLIOPE_SRC_REBALANCE_PLANNER_H_

#include <string>
#include <vector>

#include "src/util/units.h"

namespace calliope {

// NOTE: these structs declare constructors so they are not aggregates; GCC 12
// miscompiles aggregate init/copies inside coroutine bodies (see src/sim/co.h).
struct RebalanceConfig {
  RebalanceConfig() = default;

  bool enabled = false;
  // Planner cadence.
  SimTime interval = SimTime::Seconds(2);
  // Per-copy transfer rate. Defaults to the MPEG-1 stream rate so a copy
  // occupies exactly one duty-cycle slot anywhere a viewer would fit — that
  // is what lets a copy squeeze onto a saturated source disk (the duty cycle
  // keeps a few slots above the Coordinator's admission budget) without ever
  // inducing lateness on live streams.
  DataRate copy_rate = DataRate::MegabitsPerSec(1.5);
  // Popularity EWMA score that earns a title one extra replica per multiple
  // (mirrors SharingConfig::hot_threshold).
  double hot_threshold = 3.0;
  // Score at or below which surplus dynamic replicas are demoted.
  double cold_threshold = 0.25;
  // Cluster-wide cap on simultaneously running copies.
  int max_concurrent_copies = 2;
  // Cap on copies of one title (0: up to the number of MSUs).
  int max_replicas = 0;
};

// One installed copy of a title.
struct ReplicaView {
  ReplicaView() = default;

  std::string msu;
  int disk = 0;
  std::string file;
  int active_streams = 0;  // live streams currently served from this MSU
  bool dynamic = false;    // installed by the rebalancer (demotable)
};

struct TitleView {
  TitleView() = default;

  std::string name;
  double popularity = 0.0;  // decayed EWMA score at snapshot time
  int pending = 0;          // queued play requests for this title
  Bytes size;               // estimated bytes a replica occupies
  std::vector<ReplicaView> replicas;
  // MSUs an in-flight copy of this title is already headed to.
  std::vector<std::string> inflight_targets;
};

struct DiskView {
  DiskView() = default;

  DataRate load;  // live + replication bandwidth, as placement sees it
};

struct MsuView {
  MsuView() = default;

  std::string node;
  bool up = false;
  DataRate nic_budget;  // zero: unlimited
  DataRate nic_load;
  Bytes free_space;
  std::vector<DiskView> disks;
};

struct RebalanceSnapshot {
  RebalanceSnapshot() = default;

  std::vector<TitleView> titles;
  std::vector<MsuView> msus;
  // Per-disk live-stream admission budget (CoordinatorParams::disk_budget):
  // copies only land on target disks that keep this much headroom.
  DataRate disk_budget;
  // False while the saturation governor sheds load (DESIGN §5.9): the plan
  // still demotes cold replicas (frees space, costs no bandwidth) but starts
  // no new copies — bulk replication yields to viewers first.
  bool allow_copies = true;
};

struct CopyAction {
  CopyAction() = default;

  std::string content;
  std::string source_msu;
  int source_disk = 0;
  std::string source_file;
  std::string target_msu;
  int target_disk = 0;
  Bytes space;  // estimated replica size, held against the target
};

struct DemoteAction {
  DemoteAction() = default;

  std::string content;
  std::string msu;
  std::string file;
};

struct RebalancePlan {
  RebalancePlan() = default;

  std::vector<CopyAction> copies;
  std::vector<DemoteAction> demotes;
};

// Replicas a title wants given its popularity score and queue pressure.
int DesiredReplicas(const TitleView& title, const RebalanceConfig& config, int up_msus);

// Decides this tick's copies (bounded by `copy_slots`, the cluster-wide
// concurrency budget minus ops already in flight) and demotions. Pure and
// deterministic: inputs are examined in sorted order, queue pressure first.
RebalancePlan PlanRebalance(const RebalanceSnapshot& snapshot, const RebalanceConfig& config,
                            int copy_slots);

}  // namespace calliope

#endif  // CALLIOPE_SRC_REBALANCE_PLANNER_H_
