#include "src/rebalance/planner.h"

#include <algorithm>
#include <set>

namespace calliope {

namespace {

const MsuView* FindMsu(const RebalanceSnapshot& snapshot, const std::string& node) {
  for (const MsuView& msu : snapshot.msus) {
    if (msu.node == node) {
      return &msu;
    }
  }
  return nullptr;
}

DataRate TotalLoad(const MsuView& msu) {
  DataRate total;
  for (const DiskView& disk : msu.disks) {
    total = total + disk.load;
  }
  return total;
}

bool NicFits(const MsuView& msu, DataRate rate) {
  return msu.nic_budget.is_zero() || msu.nic_load + rate <= msu.nic_budget;
}

// Source choice: the copy behaves like one extra viewer, so read from the
// replica whose disk is least loaded. No budget requirement — the source
// MSU's duty cycle is the real gate (it keeps slots above the admission
// budget), and a refused prepare just retries next tick.
const ReplicaView* PickSource(const RebalanceSnapshot& snapshot, const TitleView& title,
                              DataRate copy_rate) {
  const ReplicaView* best = nullptr;
  DataRate best_load;
  for (const ReplicaView& replica : title.replicas) {
    const MsuView* msu = FindMsu(snapshot, replica.msu);
    if (msu == nullptr || !msu->up || !NicFits(*msu, copy_rate)) {
      continue;
    }
    if (replica.disk < 0 || static_cast<size_t>(replica.disk) >= msu->disks.size()) {
      continue;
    }
    const DataRate load = msu->disks[static_cast<size_t>(replica.disk)].load;
    if (best == nullptr || load < best_load) {
      best = &replica;
      best_load = load;
    }
  }
  return best;
}

// Target choice: the least-loaded up MSU that does not already hold (or
// expect) the title, with space for the replica, NIC headroom for the copy,
// and at least one disk that keeps the live admission budget clear.
struct TargetChoice {
  TargetChoice() = default;

  const MsuView* msu = nullptr;
  int disk = -1;
};

TargetChoice PickTarget(const RebalanceSnapshot& snapshot, const TitleView& title,
                        const RebalanceConfig& config, const std::set<std::string>& busy) {
  TargetChoice best;
  DataRate best_total;
  for (const MsuView& msu : snapshot.msus) {
    if (!msu.up || busy.count(msu.node) != 0) {
      continue;
    }
    if (msu.free_space < title.size || !NicFits(msu, config.copy_rate)) {
      continue;
    }
    int disk = -1;
    DataRate disk_load;
    for (size_t d = 0; d < msu.disks.size(); ++d) {
      const DataRate load = msu.disks[d].load;
      if (load + config.copy_rate > snapshot.disk_budget) {
        continue;
      }
      if (disk < 0 || load < disk_load) {
        disk = static_cast<int>(d);
        disk_load = load;
      }
    }
    if (disk < 0) {
      continue;
    }
    const DataRate total = TotalLoad(msu);
    if (best.msu == nullptr || total < best_total) {
      best.msu = &msu;
      best.disk = disk;
      best_total = total;
    }
  }
  return best;
}

}  // namespace

int DesiredReplicas(const TitleView& title, const RebalanceConfig& config, int up_msus) {
  int want = 1;
  if (config.hot_threshold > 0.0) {
    want += static_cast<int>(title.popularity / config.hot_threshold);
  }
  // Queue pressure is the strongest signal: viewers are waiting on this
  // title right now, so it wants at least one more copy than it has.
  if (title.pending > 0) {
    const int have = static_cast<int>(title.replicas.size() + title.inflight_targets.size());
    want = std::max(want, have + 1);
  }
  int cap = config.max_replicas > 0 ? std::min(config.max_replicas, up_msus) : up_msus;
  return std::max(1, std::min(want, cap));
}

RebalancePlan PlanRebalance(const RebalanceSnapshot& snapshot, const RebalanceConfig& config,
                            int copy_slots) {
  RebalancePlan plan;
  int up_msus = 0;
  for (const MsuView& msu : snapshot.msus) {
    if (msu.up) {
      ++up_msus;
    }
  }

  // Most-pressured titles first: queue depth, then popularity, then name so
  // equal-seed runs always walk the same order.
  std::vector<const TitleView*> order;
  order.reserve(snapshot.titles.size());
  for (const TitleView& title : snapshot.titles) {
    order.push_back(&title);
  }
  std::sort(order.begin(), order.end(), [](const TitleView* a, const TitleView* b) {
    if (a->pending != b->pending) {
      return a->pending > b->pending;
    }
    if (a->popularity != b->popularity) {
      return a->popularity > b->popularity;
    }
    return a->name < b->name;
  });

  for (const TitleView* title : order) {
    if (!snapshot.allow_copies || copy_slots <= 0) {
      break;
    }
    const int have =
        static_cast<int>(title->replicas.size() + title->inflight_targets.size());
    int want = DesiredReplicas(*title, config, up_msus);
    if (want <= have) {
      continue;
    }
    const ReplicaView* source = PickSource(snapshot, *title, config.copy_rate);
    if (source == nullptr) {
      continue;
    }
    // MSUs that already hold or expect this title are off limits as targets.
    std::set<std::string> busy;
    for (const ReplicaView& replica : title->replicas) {
      busy.insert(replica.msu);
    }
    for (const std::string& target : title->inflight_targets) {
      busy.insert(target);
    }
    while (want > static_cast<int>(busy.size()) && copy_slots > 0) {
      const TargetChoice target = PickTarget(snapshot, *title, config, busy);
      if (target.msu == nullptr) {
        break;
      }
      CopyAction copy;
      copy.content = title->name;
      copy.source_msu = source->msu;
      copy.source_disk = source->disk;
      copy.source_file = source->file;
      copy.target_msu = target.msu->node;
      copy.target_disk = target.disk;
      copy.space = title->size;
      plan.copies.push_back(std::move(copy));
      busy.insert(target.msu->node);
      --copy_slots;
    }
  }

  // Demotions: cold titles shed their idle dynamic replicas, one per title
  // per tick, never the last copy and never while a copy is in flight.
  for (const TitleView& title : snapshot.titles) {
    if (title.popularity > config.cold_threshold || title.pending > 0 ||
        !title.inflight_targets.empty()) {
      continue;
    }
    const int keep = DesiredReplicas(title, config, up_msus);
    if (static_cast<int>(title.replicas.size()) <= std::max(1, keep)) {
      continue;
    }
    for (const ReplicaView& replica : title.replicas) {
      const MsuView* msu = FindMsu(snapshot, replica.msu);
      if (!replica.dynamic || replica.active_streams > 0 || msu == nullptr || !msu->up) {
        continue;
      }
      DemoteAction demote;
      demote.content = title.name;
      demote.msu = replica.msu;
      demote.file = replica.file;
      plan.demotes.push_back(std::move(demote));
      break;
    }
  }
  return plan;
}

}  // namespace calliope
