// One-call construction of a complete Calliope installation inside a
// simulation: a Coordinator host, N MSU hosts, the intra-server Ethernet and
// the FDDI delivery network — plus admin helpers to bulk-load content (with
// fast-forward / fast-backward variants) and to attach client hosts.
//
// This is the entry point examples and benchmarks use:
//
//   InstallationConfig config;
//   config.msu_count = 3;
//   Installation calliope(config);
//   calliope.Boot();
//   calliope.LoadMpegMovie("movie0", SimTime::Seconds(120), 0, true);
//   CalliopeClient& client = calliope.AddClient("client0");
//   ... client.Connect / RegisterPort / Play ...
//   calliope.sim().RunFor(SimTime::Seconds(60));
#ifndef CALLIOPE_SRC_CALLIOPE_CALLIOPE_H_
#define CALLIOPE_SRC_CALLIOPE_CALLIOPE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/client/client.h"
#include "src/coord/coordinator.h"
#include "src/fault/fault.h"
#include "src/media/mpeg.h"
#include "src/media/sources.h"
#include "src/msu/msu.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/sampler.h"
#include "src/obs/trace.h"

namespace calliope {

struct InstallationConfig {
  int msu_count = 1;
  MachineParams msu_machine = MicronP66();
  CoordinatorParams coordinator;
  MsuParams msu;
  NetworkParams network;
  // "For very small installations, the Coordinator and MSU software may run
  // on the same machine": the Coordinator shares msu0's host, competing for
  // its CPU instead of having its own box.
  bool colocate_coordinator = false;
  // Warm-standby Coordinator HA: adds a second coordinator host
  // ("coordinator2") that replays the primary's oplog and takes over on
  // primary death. MSUs and clients are configured to redial the pair.
  // Ignored when colocate_coordinator is set.
  bool standby_coordinator = false;
  // Continuous telemetry: a nonzero sampler.period turns on the
  // MetricsSampler — per-window metric timelines, windowed QoS aggregation
  // from the MSU/client hot paths, and evaluation of `slos` at every tick.
  // Left at the zero default, no sampler exists and reports are byte-
  // identical to an installation without this feature.
  SamplerConfig sampler;
  std::vector<SloSpec> slos;
  uint64_t seed = 1996;
};

class Installation {
 public:
  explicit Installation(InstallationConfig config = InstallationConfig());
  // Writes the trace file when tracing was enabled with a path (EnableTracing
  // or the CALLIOPE_TRACE environment variable).
  ~Installation();

  Installation(const Installation&) = delete;
  Installation& operator=(const Installation&) = delete;

  Simulator& sim() { return sim_; }
  Network& network() { return network_; }
  Coordinator& coordinator() { return *coordinator_; }
  // Null unless config.standby_coordinator was set.
  Coordinator* standby_coordinator() { return standby_.get(); }
  // Whichever member of the HA pair currently holds the primaryship (the
  // higher epoch wins if both momentarily claim it); the sole coordinator
  // in non-HA installations.
  Coordinator& current_primary();
  // Node name the Coordinator answers on ("coordinator", or "msu0" when
  // colocated).
  const std::string& coordinator_host() const;
  size_t msu_count() const { return msus_.size(); }
  Msu& msu(size_t i) { return *msus_.at(i); }
  NetNode& msu_node(size_t i) { return *msu_nodes_.at(i); }
  NetNode& coordinator_node() { return *coordinator_node_; }

  // Runs the simulation until every MSU has registered with the Coordinator.
  Status Boot(SimTime timeout = SimTime::Seconds(30));

  // Creates a (diskless) client host attached to the delivery network.
  CalliopeClient& AddClient(const std::string& name);

  // ---- administrative bulk-load (no simulated time consumed) ----

  // Installs a synthetic MPEG-1 movie as content `name` on MSU `msu_index`;
  // with_fast_scan also produces and loads the offline-filtered fast-forward
  // and fast-backward variants (§2.3.1; every-15th-frame filter).
  Status LoadMpegMovie(const std::string& name, SimTime duration, size_t msu_index,
                       bool with_fast_scan, int disk = -1);

  // Installs an arbitrary packet sequence as content of an existing atomic
  // type (e.g. NV traces as "rtp-video").
  Status LoadPackets(const std::string& name, const std::string& type_name,
                     const PacketSequence& packets, size_t msu_index, int disk = -1);

  // Standard demo customers: "alice" (admin) and "bob".
  void AddDefaultCustomers();

  // Copies existing content (and its fast-scan variants) onto another
  // MSU/disk and registers the copy in the catalog — the §2.3.3 mitigation
  // for skewed popularity: "we can make copies of popular content on several
  // disks, but we must anticipate usage trends". The scheduler then spreads
  // streams across the copies.
  Status ReplicateContent(const std::string& name, size_t msu_index, int disk = -1);

  // Wires a FaultInjector to every MSU, the Coordinator and the network (on
  // first use) and arms `plan` on the simulator clock. Call after Boot().
  Status ApplyFaultPlan(FaultPlan plan);
  // Null until ApplyFaultPlan has run.
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  // ---- observability ----

  // Every subsystem publishes into this registry; pull a MetricsSnapshot or a
  // full ClusterReport at any sim time.
  MetricsRegistry& metrics() { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  // Null unless config.sampler.period was nonzero.
  MetricsSampler* sampler() { return sampler_.get(); }
  // Turns on span/instant recording; when `path` is nonempty the Chrome
  // trace-event JSON is written there at destruction. Setting the
  // CALLIOPE_TRACE environment variable to a path does the same at
  // construction time.
  void EnableTracing(std::string path = std::string());
  const std::string& trace_path() const { return trace_path_; }
  Status WriteTrace(const std::string& path) const { return trace_.WriteFile(path); }

  // One QoS snapshot of the whole installation: metrics, per-stream lateness
  // timelines (MSU side), per-port delivery stats (client side). Everything
  // integer-valued and sorted, so equal-seed runs compare bit-identical.
  ClusterReport BuildClusterReport();

 private:
  Status InstallFile(const std::string& file_name, const PacketSequence& packets,
                     size_t msu_index, int disk, IbTreeFile* out_image);

  InstallationConfig config_;
  Simulator sim_;
  // Declared before the subsystems that publish into them (and therefore
  // destroyed after them): attach hands out raw instrument pointers.
  MetricsRegistry metrics_;
  TraceRecorder trace_{sim_};
  std::string trace_path_;
  Network network_;
  std::unique_ptr<Machine> coordinator_machine_;
  NetNode* coordinator_node_ = nullptr;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<Machine> standby_machine_;
  NetNode* standby_node_ = nullptr;
  std::unique_ptr<Coordinator> standby_;
  std::vector<std::unique_ptr<Machine>> msu_machines_;
  std::vector<NetNode*> msu_nodes_;
  std::vector<std::unique_ptr<Msu>> msus_;
  std::vector<std::unique_ptr<Machine>> client_machines_;
  std::vector<std::unique_ptr<CalliopeClient>> clients_;
  std::unique_ptr<FaultInjector> fault_injector_;
  // Declared last: destroyed first, so its tick-event token is cancelled
  // while sim_ (declared first) is still alive.
  std::unique_ptr<MetricsSampler> sampler_;
};

// A diskless host profile for Coordinator and client machines.
MachineParams DisklessHost();

// Derives a per-installation trace path from `path`: ordinal 1 returns it
// unchanged, ordinal N>1 inserts ".N" before the extension ("out.json" →
// "out.2.json"). Used so benches that build several Installations under one
// CALLIOPE_TRACE don't overwrite each other's traces.
std::string SuffixedTracePath(const std::string& path, int ordinal);

}  // namespace calliope

#endif  // CALLIOPE_SRC_CALLIOPE_CALLIOPE_H_
