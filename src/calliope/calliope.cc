#include "src/calliope/calliope.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <utility>

#include "src/util/logging.h"

namespace calliope {

MachineParams DisklessHost() {
  MachineParams params = MicronP66();
  params.disks_per_hba.clear();
  return params;
}

std::string SuffixedTracePath(const std::string& path, int ordinal) {
  if (ordinal <= 1) {
    return path;
  }
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  const std::string suffix = "." + std::to_string(ordinal);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;  // no extension: append
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

Installation::Installation(InstallationConfig config)
    : config_(std::move(config)), network_(sim_, config_.network) {
  if (config_.colocate_coordinator) {
    config_.standby_coordinator = false;  // needs a dedicated coordinator host
  }
  if (config_.standby_coordinator && config_.msu.coordinator_hosts.empty()) {
    // MSUs redial the pair; whichever member is primary accepts.
    config_.msu.coordinator_hosts = {"coordinator", "coordinator2"};
  }
  for (int i = 0; i < config_.msu_count; ++i) {
    MachineParams msu_params = config_.msu_machine;
    msu_params.rng_seed = config_.seed + static_cast<uint64_t>(i) * 7919;
    const std::string name = "msu" + std::to_string(i);
    msu_machines_.push_back(std::make_unique<Machine>(sim_, msu_params, name));
    msu_nodes_.push_back(network_.AddNode(name, msu_machines_.back().get(), /*on_intra=*/true));
    msus_.push_back(
        std::make_unique<Msu>(*msu_machines_.back(), *msu_nodes_.back(), config_.msu));
  }

  if (config_.colocate_coordinator && !msus_.empty()) {
    // Small installation: the Coordinator runs on msu0's machine and shares
    // its host name; MSUs register against "msu0".
    coordinator_node_ = msu_nodes_.front();
    coordinator_ = std::make_unique<Coordinator>(*msu_machines_.front(), *coordinator_node_,
                                                 Catalog::WithStandardTypes(),
                                                 config_.coordinator);
  } else {
    MachineParams coord_params = DisklessHost();
    coord_params.rng_seed = config_.seed ^ 0xC00D;
    coordinator_machine_ = std::make_unique<Machine>(sim_, coord_params, "coordinator");
    coordinator_node_ = network_.AddNode("coordinator", coordinator_machine_.get(),
                                         /*on_intra=*/true);
    CoordinatorParams primary_params = config_.coordinator;
    if (config_.standby_coordinator) {
      primary_params.ha.enabled = true;
      primary_params.ha.peer_node = "coordinator2";
      primary_params.ha.peer_port = primary_params.listen_port;
    }
    // The catalog models durable shared storage: both HA pair members read
    // and write the same content/customer records.
    auto catalog = std::make_shared<Catalog>(Catalog::WithStandardTypes());
    coordinator_ = std::make_unique<Coordinator>(*coordinator_machine_, *coordinator_node_,
                                                 catalog, primary_params);
    if (config_.standby_coordinator) {
      MachineParams standby_params = DisklessHost();
      standby_params.rng_seed = config_.seed ^ 0xC00D2;
      standby_machine_ = std::make_unique<Machine>(sim_, standby_params, "coordinator2");
      standby_node_ = network_.AddNode("coordinator2", standby_machine_.get(),
                                       /*on_intra=*/true);
      CoordinatorParams standby_coord_params = config_.coordinator;
      standby_coord_params.ha.enabled = true;
      standby_coord_params.ha.peer_node = "coordinator";
      standby_coord_params.ha.peer_port = standby_coord_params.listen_port;
      standby_coord_params.ha.start_as_standby = true;
      standby_ = std::make_unique<Coordinator>(*standby_machine_, *standby_node_, catalog,
                                               standby_coord_params);
    }
  }
  AddDefaultCustomers();

  network_.AttachObservability(&metrics_, &trace_);
  for (auto& msu : msus_) {
    msu->AttachObservability(&metrics_, &trace_);
  }
  coordinator_->AttachObservability(&metrics_, &trace_);
  if (standby_ != nullptr) {
    standby_->AttachObservability(&metrics_, &trace_, "coord2");
  }
  if (config_.sampler.period > SimTime()) {
    sampler_ = std::make_unique<MetricsSampler>(sim_, metrics_, &trace_, config_.sampler,
                                                config_.slos);
    for (auto& msu : msus_) {
      msu->set_qos_sink(sampler_->qos());
    }
    sampler_->Start();
    if (config_.coordinator.traffic.enabled) {
      // The saturation governor watches the sampler's live SLO verdicts: any
      // configured monitor inside a breach episode means "overloaded".
      MetricsSampler* sampler = sampler_.get();
      coordinator_->SetOverloadProbe([sampler] { return sampler->AnySloBreaching(); });
      if (standby_ != nullptr) {
        standby_->SetOverloadProbe([sampler] { return sampler->AnySloBreaching(); });
      }
    }
  }
  if (const char* env = std::getenv("CALLIOPE_TRACE"); env != nullptr && *env != '\0') {
    // Benches build several Installations in one process; each gets its own
    // suffixed path so the later ones don't overwrite the first trace.
    static int env_trace_ordinal = 0;
    EnableTracing(SuffixedTracePath(env, ++env_trace_ordinal));
  }
}

Installation::~Installation() {
  if (trace_path_.empty()) {
    return;
  }
  if (Status written = trace_.WriteFile(trace_path_); !written.ok()) {
    CALLIOPE_LOG(kWarning, "calliope") << "trace not written: " << written.ToString();
  }
}

void Installation::EnableTracing(std::string path) {
  trace_.set_enabled(true);
  trace_path_ = std::move(path);
}

const std::string& Installation::coordinator_host() const {
  return coordinator_node_->name();
}

Coordinator& Installation::current_primary() {
  if (standby_ == nullptr) {
    return *coordinator_;
  }
  const bool first = !coordinator_->crashed() && coordinator_->is_primary();
  const bool second = !standby_->crashed() && standby_->is_primary();
  if (first && second) {
    return coordinator_->ha_epoch() >= standby_->ha_epoch() ? *coordinator_ : *standby_;
  }
  return second ? *standby_ : *coordinator_;
}

Status Installation::Boot(SimTime timeout) {
  for (auto& msu : msus_) {
    // Fire-and-forget registration tasks.
    [](Msu* m, std::string host) -> Task {
      co_await m->RegisterWithCoordinator(std::move(host));
    }(msu.get(), coordinator_host());
  }
  const SimTime deadline = sim_.Now() + timeout;
  while (sim_.Now() < deadline) {
    bool all_up = true;
    for (size_t i = 0; i < msus_.size(); ++i) {
      if (!coordinator_->MsuUp("msu" + std::to_string(i))) {
        all_up = false;
        break;
      }
    }
    if (all_up && (standby_ == nullptr || standby_->ha_joined())) {
      return OkStatus();
    }
    sim_.RunFor(SimTime::Millis(10));
  }
  if (standby_ != nullptr && !standby_->ha_joined()) {
    return DeadlineExceededError("standby coordinator never joined");
  }
  return DeadlineExceededError("MSUs failed to register");
}

Status Installation::ApplyFaultPlan(FaultPlan plan) {
  if (fault_injector_ == nullptr) {
    fault_injector_ = std::make_unique<FaultInjector>(sim_, network_,
                                                      config_.seed ^ 0xFA017);
    for (size_t i = 0; i < msus_.size(); ++i) {
      fault_injector_->AttachMsu("msu" + std::to_string(i), msus_[i].get());
    }
    fault_injector_->AttachCoordinator(coordinator_.get(), coordinator_host());
    if (standby_ != nullptr) {
      fault_injector_->AttachStandbyCoordinator(standby_.get(), "coordinator2");
    }
    // Before Arm() so the planned fault windows land in the trace as spans.
    fault_injector_->AttachObservability(&metrics_, &trace_);
  }
  return fault_injector_->Arm(std::move(plan));
}

ClusterReport Installation::BuildClusterReport() {
  ClusterReport report;
  report.metrics = metrics_.Snapshot();
  for (size_t i = 0; i < msus_.size(); ++i) {
    const std::string& node = msu_nodes_[i]->name();
    msus_[i]->ForEachStream([&](const MsuStream& stream, bool finished) {
      StreamQosReport row;
      row.stream_id = stream.id();
      row.group_id = stream.group();
      row.msu = node;
      row.disk = stream.disk();
      row.file = stream.file_name();
      row.recording = stream.mode() == MsuStream::Mode::kRecord;
      row.finished = finished;
      row.packets_sent = stream.packets_sent();
      row.packets_late = stream.lateness().CountAbove(SimTime());
      row.p50_lateness_us = stream.lateness().Quantile(0.5).micros();
      row.p99_lateness_us = stream.lateness().Quantile(0.99).micros();
      row.max_lateness_us = std::max<int64_t>(stream.lateness().MaxRecorded().micros(), 0);
      report.streams.push_back(std::move(row));
    });
  }
  std::sort(report.streams.begin(), report.streams.end(),
            [](const StreamQosReport& a, const StreamQosReport& b) {
              return a.stream_id < b.stream_id;
            });
  for (auto& client : clients_) {
    const std::string& client_name = client->node().name();
    client->ForEachPort([&](const ClientDisplayPort& port) {
      PortQosReport row;
      row.client = client_name;
      row.port = port.name();
      row.packets_received = port.packets_received();
      row.out_of_order = port.out_of_order();
      row.glitches = port.glitches();
      row.max_gap_us = port.max_arrival_gap().micros();
      report.ports.push_back(std::move(row));
    });
  }
  std::sort(report.ports.begin(), report.ports.end(),
            [](const PortQosReport& a, const PortQosReport& b) {
              return std::tie(a.client, a.port) < std::tie(b.client, b.port);
            });
  if (sampler_ != nullptr) {
    report.timeline = sampler_->BuildTimelineReport();
  }
  return report;
}

CalliopeClient& Installation::AddClient(const std::string& name) {
  MachineParams client_params = DisklessHost();
  client_params.rng_seed = config_.seed ^ (clients_.size() + 0xC11E47);
  client_machines_.push_back(std::make_unique<Machine>(sim_, client_params, name));
  NetNode* node = network_.AddNode(name, client_machines_.back().get(), /*on_intra=*/false);
  clients_.push_back(std::make_unique<CalliopeClient>(*node, coordinator_host(),
                                                      config_.coordinator.listen_port));
  if (standby_ != nullptr) {
    clients_.back()->set_coordinator_hosts({coordinator_host(), "coordinator2"});
  }
  if (sampler_ != nullptr) {
    clients_.back()->set_qos_sink(sampler_->qos());
  }
  return *clients_.back();
}

void Installation::AddDefaultCustomers() {
  (void)coordinator_->catalog().AddCustomer(Customer{"alice", "alice-key", /*admin=*/true});
  (void)coordinator_->catalog().AddCustomer(Customer{"bob", "bob-key", /*admin=*/false});
}

Status Installation::InstallFile(const std::string& file_name, const PacketSequence& packets,
                                 size_t msu_index, int disk, IbTreeFile* out_image) {
  IbTreeBuilder builder;
  for (const MediaPacket& packet : packets) {
    CALLIOPE_RETURN_IF_ERROR(builder.Add(packet));
  }
  IbTreeFile image = builder.Finish();
  if (out_image != nullptr) {
    *out_image = image;  // copy: caller inspects, file system keeps its own
  }
  auto installed = msus_.at(msu_index)->fs().InstallImage(file_name, std::move(image),
                                                          config_.msu.striped_layout, disk);
  return installed.status();
}

Status Installation::ReplicateContent(const std::string& name, size_t msu_index, int disk) {
  auto record = coordinator_->catalog().FindContent(name);
  if (!record.ok()) {
    return record.status();
  }
  if ((*record)->is_composite()) {
    for (const std::string& item : (*record)->component_items) {
      CALLIOPE_RETURN_IF_ERROR(ReplicateContent(item, msu_index, disk));
    }
    return OkStatus();
  }
  if ((*record)->locations.empty()) {
    return FailedPreconditionError("content has no source copy: " + name);
  }
  // Source image comes from the MSU currently holding the content.
  const ContentLocation& source = (*record)->locations.front();
  size_t source_index = 0;
  for (size_t i = 0; i < msus_.size(); ++i) {
    if ("msu" + std::to_string(i) == source.msu_node) {
      source_index = i;
      break;
    }
  }
  const bool same_msu = msu_index == source_index;
  // A same-MSU replica on another disk needs a distinct file name; fast-scan
  // variants are shared with the original copy in that case.
  const std::string suffix =
      same_msu ? ".copy" + std::to_string((*record)->locations.size()) : "";
  auto replicate_file = [&](const std::string& file_name, const std::string& copy_suffix,
                            int* home_disk) -> Status {
    if (file_name.empty()) {
      return OkStatus();
    }
    CALLIOPE_ASSIGN_OR_RETURN(MsuFile * source_file,
                              msus_.at(source_index)->fs().Lookup(file_name));
    IbTreeFile image = source_file->image();  // deep copy of the content image
    CALLIOPE_ASSIGN_OR_RETURN(MsuFile * copy, msus_.at(msu_index)->fs().InstallImage(
                                                  file_name + copy_suffix, std::move(image),
                                                  config_.msu.striped_layout, disk));
    if (home_disk != nullptr) {
      *home_disk = copy->home_disk();
    }
    return OkStatus();
  };
  int copy_disk = 0;
  CALLIOPE_RETURN_IF_ERROR(replicate_file((*record)->file_name, suffix, &copy_disk));
  if (!same_msu) {
    CALLIOPE_RETURN_IF_ERROR(replicate_file((*record)->fast_forward_file, "", nullptr));
    CALLIOPE_RETURN_IF_ERROR(replicate_file((*record)->fast_backward_file, "", nullptr));
  }
  ContentLocation copy_location{"msu" + std::to_string(msu_index), copy_disk};
  if (same_msu) {
    copy_location.file_name = (*record)->file_name + suffix;
  }
  (*record)->locations.push_back(std::move(copy_location));
  return OkStatus();
}

Status Installation::LoadPackets(const std::string& name, const std::string& type_name,
                                 const PacketSequence& packets, size_t msu_index, int disk) {
  CALLIOPE_RETURN_IF_ERROR(InstallFile(name + ".dat", packets, msu_index, disk, nullptr));
  auto file = msus_.at(msu_index)->fs().Lookup(name + ".dat");
  ContentRecord record;
  record.name = name;
  record.type_name = type_name;
  record.file_name = name + ".dat";
  record.duration = packets.empty() ? SimTime() : packets.back().delivery_offset;
  record.locations.push_back(
      ContentLocation{"msu" + std::to_string(msu_index), (*file)->home_disk()});
  return coordinator_->catalog().AddContent(std::move(record));
}

Status Installation::LoadMpegMovie(const std::string& name, SimTime duration, size_t msu_index,
                                   bool with_fast_scan, int disk) {
  MpegEncoderConfig encoder;
  const MpegStream stream = EncodeMpeg(encoder, duration, config_.seed ^ std::hash<std::string>{}(name));
  const Bytes packet_size = Bytes::KiB(4);

  CALLIOPE_RETURN_IF_ERROR(
      InstallFile(name + ".mpg", PacketizeCbr(stream, packet_size), msu_index, disk, nullptr));
  auto file = msus_.at(msu_index)->fs().Lookup(name + ".mpg");
  const int home_disk = (*file)->home_disk();

  ContentRecord record;
  record.name = name;
  record.type_name = "mpeg1";
  record.file_name = name + ".mpg";
  record.duration = stream.duration();
  record.locations.push_back(ContentLocation{"msu" + std::to_string(msu_index), home_disk});

  if (with_fast_scan) {
    // The administrator's offline filtering program (§2.3.1): every 15th
    // frame, recompressed; reversed for fast-backward.
    const MpegStream ff = FilterFastForward(stream, encoder.gop_size);
    const MpegStream fb = FilterFastBackward(stream, encoder.gop_size);
    CALLIOPE_RETURN_IF_ERROR(
        InstallFile(name + ".ff", PacketizeCbr(ff, packet_size), msu_index, home_disk, nullptr));
    CALLIOPE_RETURN_IF_ERROR(
        InstallFile(name + ".fb", PacketizeCbr(fb, packet_size), msu_index, home_disk, nullptr));
    record.fast_forward_file = name + ".ff";
    record.fast_backward_file = name + ".fb";
  }
  return coordinator_->catalog().AddContent(std::move(record));
}

}  // namespace calliope
