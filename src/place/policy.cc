#include "src/place/policy.h"

#include <algorithm>
#include <limits>

namespace calliope {

Bytes PlacementSpec::TotalSpace() const {
  Bytes total;
  for (const ComponentSpec& component : components) {
    total += component.space;
  }
  return total;
}

DataRate PlacementSpec::TotalRate() const {
  DataRate total;
  for (const ComponentSpec& component : components) {
    total = total + component.rate;
  }
  return total;
}

std::optional<Placement> PlaceOnMsu(const MsuAccount& account, const PlacementSpec& spec,
                                    bool first_fit) {
  if (!account.up) {
    return std::nullopt;
  }
  // Network-path admission (§2.2 extension): every stream the MSU serves
  // leaves through one NIC, so the whole group must fit under its budget no
  // matter how the components spread across disks.
  if (!account.nic_budget.is_zero() &&
      account.NicLoad() + spec.TotalRate() > account.nic_budget) {
    return std::nullopt;
  }
  std::vector<DataRate> scratch(account.disks.size());
  for (size_t d = 0; d < account.disks.size(); ++d) {
    // Background replica copies count as load: live admissions route around
    // a copy-busy disk, and the Coordinator preempts the copy when nothing
    // fits anywhere.
    scratch[d] = account.disks[d].load + account.disks[d].replication_io;
  }
  Placement placement;
  placement.msu = account.node;
  placement.disks.assign(spec.components.size(), -1);
  placement.files.assign(spec.components.size(), "");
  for (size_t i = 0; i < spec.components.size(); ++i) {
    const ComponentSpec& component = spec.components[i];
    if (!spec.record) {
      // Serve from the least-loaded copy of the item on this MSU that still
      // has bandwidth headroom (copies on several disks spread hot titles).
      const PlacementCandidate* best = nullptr;
      for (const PlacementCandidate& candidate : component.candidates) {
        if (candidate.msu != account.node) {
          continue;
        }
        if (candidate.disk < 0 || static_cast<size_t>(candidate.disk) >= scratch.size()) {
          continue;
        }
        const DataRate& load = scratch[static_cast<size_t>(candidate.disk)];
        if (load + component.rate > spec.disk_budget) {
          continue;
        }
        if (best == nullptr || (!first_fit && load < scratch[static_cast<size_t>(best->disk)])) {
          best = &candidate;
        }
        if (first_fit && best != nullptr) {
          break;
        }
      }
      if (best == nullptr) {
        return std::nullopt;
      }
      auto& load = scratch[static_cast<size_t>(best->disk)];
      load = load + component.rate;
      placement.disks[i] = best->disk;
      placement.files[i] = best->file_name.empty() ? component.file_name : best->file_name;
    } else {
      // Recording: any disk with headroom may take it; pick the least loaded
      // (or, under first-fit, the first) one.
      int best = -1;
      for (int d = 0; d < account.disk_count; ++d) {
        const DataRate& load = scratch[static_cast<size_t>(d)];
        if (load + component.rate > spec.disk_budget) {
          continue;
        }
        if (best < 0 || (!first_fit && load < scratch[static_cast<size_t>(best)])) {
          best = d;
        }
        if (first_fit && best >= 0) {
          break;
        }
      }
      if (best < 0) {
        return std::nullopt;
      }
      scratch[static_cast<size_t>(best)] = scratch[static_cast<size_t>(best)] + component.rate;
      placement.disks[i] = best;
      placement.files[i] = component.file_name;
    }
  }
  if (spec.record && account.free_space < spec.TotalSpace()) {
    return std::nullopt;
  }
  return placement;
}

namespace {

Status NoFit() { return ResourceExhaustedError("no MSU with resources for the group"); }

// Cache affinity shared by every policy: when the spec names a preferred MSU
// (it holds the title's cached prefix or a joinable delivery group) and that
// MSU can host the group, take it before running the policy's own scan.
std::optional<Placement> TryPreferred(const PlacementSpec& spec,
                                      const ResourceLedger& ledger) {
  if (spec.prefer_msu.empty()) {
    return std::nullopt;
  }
  const MsuAccount* account = ledger.Find(spec.prefer_msu);
  if (account == nullptr) {
    return std::nullopt;
  }
  return PlaceOnMsu(*account, spec);
}

// Historical default: among feasible MSUs, the one with the least total
// reserved bandwidth (strictly less; name order breaks ties).
class LeastLoadedPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "least-loaded"; }

  Result<Placement> Place(const PlacementSpec& spec, const ResourceLedger& ledger) override {
    if (std::optional<Placement> preferred = TryPreferred(spec, ledger)) {
      return *std::move(preferred);
    }
    std::optional<Placement> chosen;
    DataRate chosen_load = DataRate(std::numeric_limits<int64_t>::max());
    for (const auto& [msu_name, account] : ledger.msus()) {
      std::optional<Placement> placement = PlaceOnMsu(account, spec);
      if (placement.has_value() && account.TotalLoad() < chosen_load) {
        chosen_load = account.TotalLoad();
        chosen = std::move(placement);
      }
    }
    if (!chosen.has_value()) {
      return NoFit();
    }
    return *std::move(chosen);
  }
};

class FirstFitPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "first-fit"; }

  Result<Placement> Place(const PlacementSpec& spec, const ResourceLedger& ledger) override {
    if (std::optional<Placement> preferred = TryPreferred(spec, ledger)) {
      return *std::move(preferred);
    }
    for (const auto& [msu_name, account] : ledger.msus()) {
      std::optional<Placement> placement = PlaceOnMsu(account, spec, /*first_fit=*/true);
      if (placement.has_value()) {
        return *std::move(placement);
      }
    }
    return NoFit();
  }
};

// Samples two distinct up MSUs and takes the less-loaded feasible one; the
// two-sample trick gets most of least-loaded's balance at O(1) cost. Falls
// back to a full least-loaded scan when neither sample fits, so this policy
// never rejects a request the cluster could serve.
class PowerOfTwoChoicesPolicy : public PlacementPolicy {
 public:
  explicit PowerOfTwoChoicesPolicy(uint64_t seed) : rng_(seed) {}

  const char* name() const override { return "power-of-two"; }

  Result<Placement> Place(const PlacementSpec& spec, const ResourceLedger& ledger) override {
    if (std::optional<Placement> preferred = TryPreferred(spec, ledger)) {
      return *std::move(preferred);
    }
    std::vector<const MsuAccount*> up;
    for (const auto& [msu_name, account] : ledger.msus()) {
      if (account.up) {
        up.push_back(&account);
      }
    }
    if (up.size() > 2) {
      const size_t a = static_cast<size_t>(rng_.NextBelow(up.size()));
      size_t b = static_cast<size_t>(rng_.NextBelow(up.size() - 1));
      if (b >= a) {
        ++b;
      }
      std::optional<Placement> first = PlaceOnMsu(*up[a], spec);
      std::optional<Placement> second = PlaceOnMsu(*up[b], spec);
      if (first.has_value() && second.has_value()) {
        const bool take_second = up[b]->TotalLoad() < up[a]->TotalLoad();
        return take_second ? *std::move(second) : *std::move(first);
      }
      if (first.has_value()) {
        return *std::move(first);
      }
      if (second.has_value()) {
        return *std::move(second);
      }
    }
    return fallback_.Place(spec, ledger);
  }

 private:
  Rng rng_;
  LeastLoadedPolicy fallback_;
};

// Spreads playback across the replica holders by committed stream count on
// the disks the group would use; reserved bandwidth, then name, break ties.
// With fully replicated content this keeps every copy warm, which is what
// makes post-failure re-placement cheap.
class ReplicaAwarePolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "replica-aware"; }

  Result<Placement> Place(const PlacementSpec& spec, const ResourceLedger& ledger) override {
    if (std::optional<Placement> preferred = TryPreferred(spec, ledger)) {
      return *std::move(preferred);
    }
    std::optional<Placement> chosen;
    int chosen_streams = std::numeric_limits<int>::max();
    DataRate chosen_load = DataRate(std::numeric_limits<int64_t>::max());
    for (const auto& [msu_name, account] : ledger.msus()) {
      std::optional<Placement> placement = PlaceOnMsu(account, spec);
      if (!placement.has_value()) {
        continue;
      }
      int streams = 0;
      for (int disk : placement->disks) {
        streams += account.disks[static_cast<size_t>(disk)].streams;
      }
      const DataRate load = account.TotalLoad();
      if (streams < chosen_streams ||
          (streams == chosen_streams && load < chosen_load)) {
        chosen_streams = streams;
        chosen_load = load;
        chosen = std::move(placement);
      }
    }
    if (!chosen.has_value()) {
      return NoFit();
    }
    return *std::move(chosen);
  }
};

}  // namespace

PlacementPolicyRegistry PlacementPolicyRegistry::WithBuiltins() {
  PlacementPolicyRegistry registry;
  (void)registry.Register("least-loaded", [](uint64_t) {
    return std::make_unique<LeastLoadedPolicy>();
  });
  (void)registry.Register("first-fit", [](uint64_t) {
    return std::make_unique<FirstFitPolicy>();
  });
  (void)registry.Register("power-of-two", [](uint64_t seed) {
    return std::make_unique<PowerOfTwoChoicesPolicy>(seed);
  });
  (void)registry.Register("replica-aware", [](uint64_t) {
    return std::make_unique<ReplicaAwarePolicy>();
  });
  return registry;
}

Status PlacementPolicyRegistry::Register(std::string name, Factory factory) {
  auto [it, inserted] = factories_.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    return AlreadyExistsError("placement policy exists: " + it->first);
  }
  return OkStatus();
}

Result<std::unique_ptr<PlacementPolicy>> PlacementPolicyRegistry::Instantiate(
    const std::string& name, uint64_t seed) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return NotFoundError("unknown placement policy: " + name);
  }
  return it->second(seed);
}

std::vector<std::string> PlacementPolicyRegistry::names() const {
  std::vector<std::string> names;
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace calliope
