// ResourceLedger: the single owner of per-MSU / per-disk bandwidth and disk
// space accounting (§2.2: "As the Coordinator assigns resources to clients,
// it keeps track of load by processor and disk").
//
// All admission state changes go through explicit transactions:
//
//   Reserve()  debits a whole stream group's bandwidth and space atomically,
//              before any MSU is contacted, so racing admissions never see
//              stale load numbers. The returned Txn rolls the debit back in
//              its destructor unless committed.
//   Commit()   transfers one component's reservation into a per-stream hold.
//   Release()  refunds a stream's hold exactly once; recordings pass the
//              bytes actually written so only the over-estimate is returned.
//
// Accounts carry an epoch that bumps on (re-)registration; stale transactions
// and holds from before a re-registration never touch the fresh numbers.
#ifndef CALLIOPE_SRC_PLACE_LEDGER_H_
#define CALLIOPE_SRC_PLACE_LEDGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/net/message.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace calliope {

// NOTE: these structs declare constructors so they are not aggregates; GCC 12
// miscompiles aggregate init/copies inside coroutine bodies (see src/sim/co.h).
struct DiskAccount {
  DiskAccount() = default;

  DataRate load;    // reserved bandwidth
  int streams = 0;  // committed streams served from this disk
  // Bandwidth held by background replica copies (rebalancing, DESIGN §5.8).
  // Placement counts it as load — live admissions route around a copy-busy
  // disk — but it is tracked separately so the planner can preempt it.
  DataRate replication_io;
};

struct MsuAccount {
  MsuAccount() = default;

  std::string node;
  bool up = false;
  int disk_count = 0;
  Bytes free_space;
  // Outbound NIC capacity (ROADMAP "network-path admission"). Zero means
  // unlimited; placement rejects groups whose aggregate rate would push
  // NicLoad() past a nonzero budget even when individual disks have room.
  DataRate nic_budget;
  // Interval/prefix cache budget (stream sharing, DESIGN §5.6). Zero means
  // the MSU has no page cache; cache-served viewers reserve bytes here
  // instead of disk bandwidth.
  Bytes cache_memory;
  Bytes cache_used;
  // Rate reserved by cache-served viewers: consumes the NIC but no disk.
  DataRate shared_load;
  int shared_streams = 0;
  std::vector<DiskAccount> disks;
  int64_t epoch = 0;  // bumps on every (re-)registration

  DataRate TotalLoad() const;
  // Sum of the disks' replication_io: bandwidth serving background copies.
  DataRate ReplicationLoad() const;
  // TotalLoad() plus the cache-served viewers' shared_load plus replication
  // traffic: what the outbound NIC actually carries, checked against
  // nic_budget.
  DataRate NicLoad() const;
  int TotalStreams() const;
};

class ResourceLedger {
 public:
  // Disk index marking a cache-served (shared) reservation: the item's rate
  // debits shared_load (NIC only) and its cache bytes debit cache_used; no
  // disk bandwidth or space is touched.
  static constexpr int kSharedDisk = -1;

  // One component's share of a group reservation.
  struct ReserveItem {
    ReserveItem() = default;
    ReserveItem(int disk_index, DataRate bandwidth, Bytes space_bytes)
        : disk(disk_index), rate(bandwidth), space(space_bytes) {}
    ReserveItem(int disk_index, DataRate bandwidth, Bytes space_bytes, Bytes cache_bytes)
        : disk(disk_index), rate(bandwidth), space(space_bytes), cache(cache_bytes) {}

    int disk = 0;
    DataRate rate;
    Bytes space;
    Bytes cache;  // interval-cache bytes; only meaningful with disk == kSharedDisk
  };

  // A group reservation in flight. Move-only; uncommitted items are refunded
  // when the transaction is destroyed (e.g. the MSU refused the stream).
  class Txn {
   public:
    Txn() = default;
    Txn(Txn&& other) noexcept;
    Txn& operator=(Txn&& other) noexcept;
    Txn(const Txn&) = delete;
    Txn& operator=(const Txn&) = delete;
    ~Txn();

    bool valid() const { return ledger_ != nullptr; }
    const std::string& msu() const { return node_; }
    // Converts item `index` into a per-stream hold; `stream`'s bandwidth and
    // space now stay debited until Release(stream).
    void Commit(size_t index, StreamId stream);

   private:
    friend class ResourceLedger;
    Txn(ResourceLedger* ledger, std::string node, int64_t epoch,
        std::vector<ReserveItem> items);
    void Rollback();

    ResourceLedger* ledger_ = nullptr;
    std::string node_;
    int64_t epoch_ = 0;
    std::vector<ReserveItem> items_;
    std::vector<bool> committed_;
  };

  // Registers (or re-registers) an MSU with fresh capacity numbers. Resets
  // the account and invalidates holds that predate the registration.
  void RegisterMsu(const std::string& node, int disk_count, Bytes free_space,
                   DataRate nic_budget = DataRate(), Bytes cache_memory = Bytes());
  // Warm re-registration: the MSU never stopped serving, only its control
  // connection moved (Coordinator failover). Marks the account up again but
  // keeps its balances, epoch and holds; falls back to RegisterMsu when the
  // account is unknown or its shape changed.
  void ReattachMsu(const std::string& node, int disk_count, Bytes free_space,
                   DataRate nic_budget = DataRate(), Bytes cache_memory = Bytes());
  void MarkDown(const std::string& node);

  bool IsUp(const std::string& node) const;
  const MsuAccount* Find(const std::string& node) const;
  const std::map<std::string, MsuAccount>& msus() const { return msus_; }
  DataRate DiskLoad(const std::string& node, int disk) const;
  Bytes FreeSpace(const std::string& node) const;

  // Debits every item's bandwidth (and space) on `node` at once. Fails with
  // kUnavailable if the MSU is unknown or down, kInvalidArgument on a bad
  // disk index. Budget checks are the placement policy's job, not ours —
  // except the cache budget, which no policy sees: a kSharedDisk item whose
  // cache bytes would push cache_used past cache_memory fails with
  // kResourceExhausted.
  Result<Txn> Reserve(const std::string& node, std::vector<ReserveItem> items);

  // Refunds `stream`'s hold: bandwidth in full, space minus `space_used`.
  // Returns false (and changes nothing) if the stream holds nothing — calling
  // twice is safe, the second call is a no-op.
  bool Release(StreamId stream, Bytes space_used = Bytes());

  // ---- introspection for tests and benches ----
  DataRate TotalReserved() const;  // sum of every disk's reserved bandwidth
  size_t outstanding_holds() const { return holds_.size(); }

  // One committed stream hold, exposed for HA snapshots and tests.
  struct HoldInfo {
    HoldInfo() = default;

    std::string msu;
    int disk = 0;  // kSharedDisk for cache-served holds
    DataRate rate;
    Bytes space;
    Bytes cache;
    bool current_epoch = false;  // matches the account's registration epoch
  };
  std::optional<HoldInfo> FindHold(StreamId stream) const;
  void ForEachHold(const std::function<void(StreamId, const HoldInfo&)>& fn) const;

  // ---- background replica copies (rebalancing, DESIGN §5.8) ----
  //
  // A copy op holds replication_io bandwidth on the source's and the target's
  // disks (debiting each NIC through NicLoad) plus the replica's estimated
  // space on the target. Holds are epoch-stamped like stream holds: an MSU
  // re-registration silently invalidates them.

  // Adds one end of copy op `op` (at most one hold per (op, msu) pair).
  // Fails with kUnavailable if the MSU is unknown or down, kInvalidArgument
  // on a bad disk index or a duplicate hold.
  Status AddReplication(int64_t op, const std::string& node, int disk, DataRate rate,
                        Bytes space = Bytes());
  // Releases every hold of `op`. With keep_space (the replica committed) the
  // target's space stays debited; otherwise it is refunded. Safe to call for
  // unknown ops (no-op, returns false).
  bool ReleaseReplication(int64_t op, bool keep_space = false);
  size_t outstanding_replications() const { return repl_holds_.size(); }

  struct ReplicationHoldInfo {
    ReplicationHoldInfo() = default;

    std::string msu;
    int disk = 0;
    DataRate rate;
    Bytes space;
    bool current_epoch = false;
  };
  void ForEachReplication(
      const std::function<void(int64_t, const ReplicationHoldInfo&)>& fn) const;

  // Structural consistency check for tests and the chaos harness: no negative
  // balances, every current-epoch hold referencing a real account and disk,
  // per-disk stream counts equal to the number of current-epoch holds, and
  // per-disk committed bandwidth no larger than the reserved load (in-flight
  // transactions account for the difference). Returns the first violation.
  Status CheckInvariants() const;

 private:
  struct StreamHold {
    StreamHold() = default;

    std::string msu;
    int disk = 0;
    DataRate rate;
    Bytes space;
    Bytes cache;
    int64_t epoch = 0;
  };

  struct ReplicationHold {
    ReplicationHold() = default;

    std::string msu;
    int disk = 0;
    DataRate rate;
    Bytes space;
    int64_t epoch = 0;
  };

  // Refunds one item to its account; no-op if the account re-registered.
  void Refund(const std::string& node, int64_t epoch, int disk, DataRate rate,
              Bytes space, Bytes cache);

  std::map<std::string, MsuAccount> msus_;
  std::map<StreamId, StreamHold> holds_;
  // Replica-copy holds: op id -> the op's per-MSU holds (source + target).
  std::map<int64_t, std::vector<ReplicationHold>> repl_holds_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_PLACE_LEDGER_H_
