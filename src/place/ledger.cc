#include "src/place/ledger.h"

#include <iterator>
#include <utility>

namespace calliope {

DataRate MsuAccount::TotalLoad() const {
  DataRate total;
  for (const DiskAccount& disk : disks) {
    total = total + disk.load;
  }
  return total;
}

DataRate MsuAccount::ReplicationLoad() const {
  DataRate total;
  for (const DiskAccount& disk : disks) {
    total = total + disk.replication_io;
  }
  return total;
}

DataRate MsuAccount::NicLoad() const { return TotalLoad() + shared_load + ReplicationLoad(); }

int MsuAccount::TotalStreams() const {
  int total = 0;
  for (const DiskAccount& disk : disks) {
    total += disk.streams;
  }
  return total;
}

// ---- Txn ----

ResourceLedger::Txn::Txn(ResourceLedger* ledger, std::string node, int64_t epoch,
                         std::vector<ReserveItem> items)
    : ledger_(ledger),
      node_(std::move(node)),
      epoch_(epoch),
      items_(std::move(items)),
      committed_(items_.size(), false) {}

ResourceLedger::Txn::Txn(Txn&& other) noexcept
    : ledger_(other.ledger_),
      node_(std::move(other.node_)),
      epoch_(other.epoch_),
      items_(std::move(other.items_)),
      committed_(std::move(other.committed_)) {
  other.ledger_ = nullptr;
}

ResourceLedger::Txn& ResourceLedger::Txn::operator=(Txn&& other) noexcept {
  if (this != &other) {
    Rollback();
    ledger_ = other.ledger_;
    node_ = std::move(other.node_);
    epoch_ = other.epoch_;
    items_ = std::move(other.items_);
    committed_ = std::move(other.committed_);
    other.ledger_ = nullptr;
  }
  return *this;
}

ResourceLedger::Txn::~Txn() { Rollback(); }

void ResourceLedger::Txn::Rollback() {
  if (ledger_ == nullptr) {
    return;
  }
  for (size_t i = 0; i < items_.size(); ++i) {
    if (!committed_[i]) {
      ledger_->Refund(node_, epoch_, items_[i].disk, items_[i].rate, items_[i].space,
                      items_[i].cache);
    }
  }
  ledger_ = nullptr;
}

void ResourceLedger::Txn::Commit(size_t index, StreamId stream) {
  if (ledger_ == nullptr || index >= items_.size() || committed_[index]) {
    return;
  }
  committed_[index] = true;
  const ReserveItem& item = items_[index];
  StreamHold hold;
  hold.msu = node_;
  hold.disk = item.disk;
  hold.rate = item.rate;
  hold.space = item.space;
  hold.cache = item.cache;
  hold.epoch = epoch_;
  ledger_->holds_[stream] = std::move(hold);
  auto it = ledger_->msus_.find(node_);
  if (it != ledger_->msus_.end() && it->second.epoch == epoch_) {
    if (item.disk == kSharedDisk) {
      ++it->second.shared_streams;
    } else {
      ++it->second.disks[static_cast<size_t>(item.disk)].streams;
    }
  }
}

// ---- ResourceLedger ----

void ResourceLedger::RegisterMsu(const std::string& node, int disk_count,
                                 Bytes free_space, DataRate nic_budget,
                                 Bytes cache_memory) {
  MsuAccount& account = msus_[node];
  account.node = node;
  account.up = true;
  account.disk_count = disk_count;
  account.free_space = free_space;
  account.nic_budget = nic_budget;
  account.cache_memory = cache_memory;
  account.cache_used = Bytes(0);
  account.shared_load = DataRate();
  account.shared_streams = 0;
  account.disks.assign(static_cast<size_t>(disk_count), DiskAccount());
  ++account.epoch;
  // Holds from before the re-registration are stale: the MSU reported its
  // real capacity afresh, so refunding them later must not touch it.
  for (auto it = holds_.begin(); it != holds_.end();) {
    if (it->second.msu == node && it->second.epoch != account.epoch) {
      it = holds_.erase(it);
    } else {
      ++it;
    }
  }
  // Likewise replication holds touching this MSU: the crashed end's copy is
  // gone, and the Coordinator separately aborts the op itself.
  for (auto it = repl_holds_.begin(); it != repl_holds_.end();) {
    auto& ends = it->second;
    for (auto end = ends.begin(); end != ends.end();) {
      if (end->msu == node && end->epoch != account.epoch) {
        end = ends.erase(end);
      } else {
        ++end;
      }
    }
    it = ends.empty() ? repl_holds_.erase(it) : std::next(it);
  }
}

void ResourceLedger::ReattachMsu(const std::string& node, int disk_count,
                                 Bytes free_space, DataRate nic_budget,
                                 Bytes cache_memory) {
  auto it = msus_.find(node);
  if (it == msus_.end() || it->second.disk_count != disk_count) {
    RegisterMsu(node, disk_count, free_space, nic_budget, cache_memory);
    return;
  }
  // Keep the account's balances: the debits for the MSU's still-running
  // streams are already reflected there, while the MSU's own free-space
  // report would double-count recording estimates not yet written to disk.
  it->second.up = true;
  it->second.nic_budget = nic_budget;
  it->second.cache_memory = cache_memory;
}

void ResourceLedger::MarkDown(const std::string& node) {
  auto it = msus_.find(node);
  if (it != msus_.end()) {
    it->second.up = false;
  }
}

bool ResourceLedger::IsUp(const std::string& node) const {
  auto it = msus_.find(node);
  return it != msus_.end() && it->second.up;
}

const MsuAccount* ResourceLedger::Find(const std::string& node) const {
  auto it = msus_.find(node);
  return it == msus_.end() ? nullptr : &it->second;
}

DataRate ResourceLedger::DiskLoad(const std::string& node, int disk) const {
  auto it = msus_.find(node);
  if (it == msus_.end() || static_cast<size_t>(disk) >= it->second.disks.size()) {
    return DataRate();
  }
  return it->second.disks[static_cast<size_t>(disk)].load;
}

Bytes ResourceLedger::FreeSpace(const std::string& node) const {
  auto it = msus_.find(node);
  return it == msus_.end() ? Bytes(0) : it->second.free_space;
}

Result<ResourceLedger::Txn> ResourceLedger::Reserve(const std::string& node,
                                                    std::vector<ReserveItem> items) {
  auto it = msus_.find(node);
  if (it == msus_.end() || !it->second.up) {
    return UnavailableError("ledger: MSU unavailable: " + node);
  }
  MsuAccount& account = it->second;
  Bytes cache_wanted;
  for (const ReserveItem& item : items) {
    if (item.disk == kSharedDisk) {
      cache_wanted += item.cache;
      continue;
    }
    if (item.disk < 0 || static_cast<size_t>(item.disk) >= account.disks.size()) {
      return InvalidArgumentError("ledger: bad disk index on " + node);
    }
  }
  if (account.cache_used + cache_wanted > account.cache_memory) {
    return ResourceExhaustedError("ledger: cache memory exhausted on " + node);
  }
  for (const ReserveItem& item : items) {
    if (item.disk == kSharedDisk) {
      account.shared_load = account.shared_load + item.rate;
      account.cache_used += item.cache;
      continue;
    }
    DiskAccount& disk = account.disks[static_cast<size_t>(item.disk)];
    disk.load = disk.load + item.rate;
    account.free_space -= item.space;
  }
  return Txn(this, node, account.epoch, std::move(items));
}

bool ResourceLedger::Release(StreamId stream, Bytes space_used) {
  auto it = holds_.find(stream);
  if (it == holds_.end()) {
    return false;
  }
  StreamHold hold = std::move(it->second);
  holds_.erase(it);
  Bytes refund = hold.space - space_used;
  if (refund < Bytes(0)) {
    refund = Bytes(0);  // recording overran its estimate; nothing to return
  }
  auto msu_it = msus_.find(hold.msu);
  if (msu_it != msus_.end() && msu_it->second.epoch == hold.epoch) {
    MsuAccount& account = msu_it->second;
    if (hold.disk == kSharedDisk) {
      account.shared_load = account.shared_load - hold.rate;
      if (account.shared_load < DataRate()) {
        account.shared_load = DataRate();
      }
      account.cache_used -= hold.cache;
      if (account.cache_used < Bytes(0)) {
        account.cache_used = Bytes(0);
      }
      --account.shared_streams;
      return true;
    }
    DiskAccount& disk = account.disks[static_cast<size_t>(hold.disk)];
    disk.load = disk.load - hold.rate;
    if (disk.load < DataRate()) {
      disk.load = DataRate();
    }
    --disk.streams;
    account.free_space += refund;
  }
  return true;
}

Status ResourceLedger::AddReplication(int64_t op, const std::string& node, int disk,
                                      DataRate rate, Bytes space) {
  auto it = msus_.find(node);
  if (it == msus_.end() || !it->second.up) {
    return UnavailableError("ledger: MSU unavailable: " + node);
  }
  MsuAccount& account = it->second;
  if (disk < 0 || static_cast<size_t>(disk) >= account.disks.size()) {
    return InvalidArgumentError("ledger: bad disk index on " + node);
  }
  std::vector<ReplicationHold>& ends = repl_holds_[op];
  for (const ReplicationHold& end : ends) {
    if (end.msu == node) {
      return InvalidArgumentError("ledger: duplicate replication hold on " + node);
    }
  }
  account.disks[static_cast<size_t>(disk)].replication_io =
      account.disks[static_cast<size_t>(disk)].replication_io + rate;
  account.free_space -= space;
  ReplicationHold hold;
  hold.msu = node;
  hold.disk = disk;
  hold.rate = rate;
  hold.space = space;
  hold.epoch = account.epoch;
  ends.push_back(std::move(hold));
  return OkStatus();
}

bool ResourceLedger::ReleaseReplication(int64_t op, bool keep_space) {
  auto it = repl_holds_.find(op);
  if (it == repl_holds_.end()) {
    return false;
  }
  for (const ReplicationHold& end : it->second) {
    auto msu_it = msus_.find(end.msu);
    if (msu_it == msus_.end() || msu_it->second.epoch != end.epoch) {
      continue;  // the account re-registered; its numbers are fresh
    }
    MsuAccount& account = msu_it->second;
    DiskAccount& disk = account.disks[static_cast<size_t>(end.disk)];
    disk.replication_io = disk.replication_io - end.rate;
    if (disk.replication_io < DataRate()) {
      disk.replication_io = DataRate();
    }
    if (!keep_space) {
      account.free_space += end.space;
    }
  }
  repl_holds_.erase(it);
  return true;
}

void ResourceLedger::ForEachReplication(
    const std::function<void(int64_t, const ReplicationHoldInfo&)>& fn) const {
  for (const auto& [op, ends] : repl_holds_) {
    for (const ReplicationHold& end : ends) {
      auto msu_it = msus_.find(end.msu);
      ReplicationHoldInfo info;
      info.msu = end.msu;
      info.disk = end.disk;
      info.rate = end.rate;
      info.space = end.space;
      info.current_epoch = msu_it != msus_.end() && msu_it->second.epoch == end.epoch;
      fn(op, info);
    }
  }
}

void ResourceLedger::Refund(const std::string& node, int64_t epoch, int disk,
                            DataRate rate, Bytes space, Bytes cache) {
  auto it = msus_.find(node);
  if (it == msus_.end() || it->second.epoch != epoch) {
    return;
  }
  MsuAccount& account = it->second;
  if (disk == kSharedDisk) {
    account.shared_load = account.shared_load - rate;
    if (account.shared_load < DataRate()) {
      account.shared_load = DataRate();
    }
    account.cache_used -= cache;
    if (account.cache_used < Bytes(0)) {
      account.cache_used = Bytes(0);
    }
    return;
  }
  DiskAccount& account_disk = account.disks[static_cast<size_t>(disk)];
  account_disk.load = account_disk.load - rate;
  if (account_disk.load < DataRate()) {
    account_disk.load = DataRate();
  }
  account.free_space += space;
}

Status ResourceLedger::CheckInvariants() const {
  for (const auto& [name, account] : msus_) {
    if (static_cast<size_t>(account.disk_count) != account.disks.size()) {
      return InternalError("ledger: " + name + " disk vector does not match disk_count");
    }
    if (account.free_space < Bytes(0)) {
      return InternalError("ledger: " + name + " free space is negative");
    }
    if (account.shared_load < DataRate()) {
      return InternalError("ledger: " + name + " shared load is negative");
    }
    if (account.cache_used < Bytes(0)) {
      return InternalError("ledger: " + name + " cache usage is negative");
    }
    if (account.cache_used > account.cache_memory) {
      return InternalError("ledger: " + name + " cache usage exceeds its budget");
    }
    if (account.shared_streams < 0) {
      return InternalError("ledger: " + name + " shared stream count is negative");
    }
    {
      DataRate shared_committed;
      Bytes cache_committed;
      int shared_held = 0;
      for (const auto& [stream, hold] : holds_) {
        if (hold.msu == name && hold.epoch == account.epoch && hold.disk == kSharedDisk) {
          shared_committed = shared_committed + hold.rate;
          cache_committed += hold.cache;
          ++shared_held;
        }
      }
      if (shared_held != account.shared_streams) {
        return InternalError("ledger: " + name + " counts " +
                             std::to_string(account.shared_streams) +
                             " shared streams but holds " + std::to_string(shared_held));
      }
      if (shared_committed > account.shared_load) {
        return InternalError("ledger: " + name +
                             " committed shared bandwidth exceeds shared load");
      }
      if (cache_committed > account.cache_used) {
        return InternalError("ledger: " + name +
                             " committed cache bytes exceed cache usage");
      }
    }
    for (size_t d = 0; d < account.disks.size(); ++d) {
      const DiskAccount& disk = account.disks[d];
      if (disk.load < DataRate()) {
        return InternalError("ledger: " + name + " disk " + std::to_string(d) +
                             " load is negative");
      }
      if (disk.streams < 0) {
        return InternalError("ledger: " + name + " disk " + std::to_string(d) +
                             " stream count is negative");
      }
      // Committed holds must be covered by the reserved load; an in-flight
      // (uncommitted) transaction only ever adds load on top.
      DataRate committed;
      int held_streams = 0;
      for (const auto& [stream, hold] : holds_) {
        if (hold.msu == name && hold.epoch == account.epoch &&
            hold.disk == static_cast<int>(d)) {
          committed = committed + hold.rate;
          ++held_streams;
        }
      }
      if (held_streams != disk.streams) {
        return InternalError("ledger: " + name + " disk " + std::to_string(d) + " counts " +
                             std::to_string(disk.streams) + " streams but holds " +
                             std::to_string(held_streams));
      }
      if (committed > disk.load) {
        return InternalError("ledger: " + name + " disk " + std::to_string(d) +
                             " committed bandwidth exceeds reserved load");
      }
      if (disk.replication_io < DataRate()) {
        return InternalError("ledger: " + name + " disk " + std::to_string(d) +
                             " replication bandwidth is negative");
      }
      // Every unit of replication_io is backed by a current-epoch copy hold.
      DataRate repl_held;
      for (const auto& [op, ends] : repl_holds_) {
        for (const ReplicationHold& end : ends) {
          if (end.msu == name && end.epoch == account.epoch &&
              end.disk == static_cast<int>(d)) {
            repl_held = repl_held + end.rate;
          }
        }
      }
      if (repl_held != disk.replication_io) {
        return InternalError("ledger: " + name + " disk " + std::to_string(d) +
                             " replication bandwidth does not match its copy holds");
      }
    }
  }
  for (const auto& [op, ends] : repl_holds_) {
    if (ends.empty()) {
      return InternalError("ledger: copy op " + std::to_string(op) + " holds nothing");
    }
    for (const ReplicationHold& end : ends) {
      auto it = msus_.find(end.msu);
      if (it == msus_.end()) {
        return InternalError("ledger: copy op " + std::to_string(op) +
                             " references unknown MSU " + end.msu);
      }
      if (end.epoch > it->second.epoch) {
        return InternalError("ledger: copy op " + std::to_string(op) +
                             " is from a future epoch");
      }
      if (end.rate < DataRate() || end.space < Bytes(0)) {
        return InternalError("ledger: copy op " + std::to_string(op) +
                             " has a negative balance");
      }
    }
  }
  for (const auto& [stream, hold] : holds_) {
    auto it = msus_.find(hold.msu);
    if (it == msus_.end()) {
      return InternalError("ledger: hold for stream " + std::to_string(stream) +
                           " references unknown MSU " + hold.msu);
    }
    if (hold.epoch > it->second.epoch) {
      return InternalError("ledger: hold for stream " + std::to_string(stream) +
                           " is from a future epoch");
    }
    if (hold.epoch == it->second.epoch && hold.disk != kSharedDisk &&
        (hold.disk < 0 || static_cast<size_t>(hold.disk) >= it->second.disks.size())) {
      return InternalError("ledger: hold for stream " + std::to_string(stream) +
                           " references bad disk " + std::to_string(hold.disk));
    }
    if (hold.rate < DataRate() || hold.space < Bytes(0) || hold.cache < Bytes(0)) {
      return InternalError("ledger: hold for stream " + std::to_string(stream) +
                           " has a negative balance");
    }
  }
  return OkStatus();
}

namespace {

ResourceLedger::HoldInfo MakeHoldInfo(const std::string& msu, int disk, DataRate rate,
                                      Bytes space, Bytes cache, bool current_epoch) {
  ResourceLedger::HoldInfo info;
  info.msu = msu;
  info.disk = disk;
  info.rate = rate;
  info.space = space;
  info.cache = cache;
  info.current_epoch = current_epoch;
  return info;
}

}  // namespace

std::optional<ResourceLedger::HoldInfo> ResourceLedger::FindHold(StreamId stream) const {
  auto it = holds_.find(stream);
  if (it == holds_.end()) {
    return std::nullopt;
  }
  const StreamHold& hold = it->second;
  auto msu_it = msus_.find(hold.msu);
  const bool current = msu_it != msus_.end() && msu_it->second.epoch == hold.epoch;
  return MakeHoldInfo(hold.msu, hold.disk, hold.rate, hold.space, hold.cache, current);
}

void ResourceLedger::ForEachHold(
    const std::function<void(StreamId, const HoldInfo&)>& fn) const {
  for (const auto& [stream, hold] : holds_) {
    auto msu_it = msus_.find(hold.msu);
    const bool current = msu_it != msus_.end() && msu_it->second.epoch == hold.epoch;
    fn(stream, MakeHoldInfo(hold.msu, hold.disk, hold.rate, hold.space, hold.cache, current));
  }
}

DataRate ResourceLedger::TotalReserved() const {
  DataRate total;
  for (const auto& [name, account] : msus_) {
    total = total + account.TotalLoad();
  }
  return total;
}

}  // namespace calliope
