// Pluggable placement policies for the Coordinator's admission path.
//
// The Coordinator reduces a (possibly composite) play/record request to a
// PlacementSpec — per-component rates, space estimates and candidate copies —
// and asks a PlacementPolicy to pick one MSU that can host the whole group
// ("Calliope assigns all streams in a group to the same MSU", §2.2). The
// policy only *chooses*; reservations happen afterwards through the
// ResourceLedger, so every policy sees the same consistent load numbers.
//
// Built-in policies (PlacementPolicyRegistry::WithBuiltins):
//   least-loaded    historical default: feasible MSU with the lowest total
//                   reserved bandwidth; least-loaded copy/disk within it.
//   first-fit       first feasible MSU in name order, first disk that fits.
//   power-of-two    samples two random up MSUs and takes the less loaded
//                   feasible one (full scan fallback, so admission never
//                   spuriously fails). Deterministic given its seed.
//   replica-aware   spreads by committed stream count across replica holders,
//                   breaking ties by reserved bandwidth, then name.
#ifndef CALLIOPE_SRC_PLACE_POLICY_H_
#define CALLIOPE_SRC_PLACE_POLICY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/place/ledger.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace calliope {

// One copy of a component's content that a play stream could be served from.
struct PlacementCandidate {
  PlacementCandidate() = default;
  PlacementCandidate(std::string msu_name, int disk_index, std::string file)
      : msu(std::move(msu_name)), disk(disk_index), file_name(std::move(file)) {}

  std::string msu;
  int disk = 0;
  std::string file_name;  // empty: use the component's default file name
};

struct ComponentSpec {
  ComponentSpec() = default;

  DataRate rate;          // bandwidth to reserve (content type's bandwidth_rate)
  Bytes space;            // recordings: estimated space debit
  std::string file_name;  // default MSU file name
  // Play: every copy of the item, across all MSUs (the policy filters by
  // MSU). Recordings have no candidates — any disk may take them.
  std::vector<PlacementCandidate> candidates;
};

struct PlacementSpec {
  PlacementSpec() = default;

  bool record = false;
  DataRate disk_budget;  // per-disk admission ceiling
  // Sharing affinity (DESIGN §5.6): the MSU whose page cache already holds
  // this title's prefix or a joinable delivery group. Every policy tries it
  // first when feasible, so followers land where the cached bytes are; empty
  // means no preference and leaves historical behavior untouched.
  std::string prefer_msu;
  std::vector<ComponentSpec> components;

  Bytes TotalSpace() const;
  DataRate TotalRate() const;  // aggregate group bandwidth (NIC admission)
};

// A policy's verdict: the chosen MSU plus per-component disks and files.
struct Placement {
  Placement() = default;

  std::string msu;
  std::vector<int> disks;
  std::vector<std::string> files;
};

// Greedy per-MSU feasibility check shared by every built-in policy; this is
// the admission rule the Coordinator has always applied. Components claim
// disks against a scratch copy of the account's loads (so one group's members
// see each other); `first_fit` takes the first disk with headroom instead of
// the least-loaded one. Empty optional: the MSU cannot host the group.
std::optional<Placement> PlaceOnMsu(const MsuAccount& account, const PlacementSpec& spec,
                                    bool first_fit = false);

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual const char* name() const = 0;
  // Picks an MSU for the whole group. kResourceExhausted when no up MSU can
  // host it right now (the Coordinator queues the request).
  virtual Result<Placement> Place(const PlacementSpec& spec,
                                  const ResourceLedger& ledger) = 0;
};

class PlacementPolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<PlacementPolicy>(uint64_t seed)>;

  // All four built-in policies, ready to instantiate.
  static PlacementPolicyRegistry WithBuiltins();

  Status Register(std::string name, Factory factory);
  Result<std::unique_ptr<PlacementPolicy>> Instantiate(const std::string& name,
                                                       uint64_t seed) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_PLACE_POLICY_H_
