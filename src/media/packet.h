// Media packet descriptors.
//
// The simulated disks and wires carry timing, not bytes, so recorded content
// is represented by packet descriptors: delivery offset (from the start of
// the recording — the paper's delivery schedules store offsets, not absolute
// times), wire size, and protocol flags. File-system and IB-tree metadata is
// serialized to real bytes; bulk payload is accounted by length only.
#ifndef CALLIOPE_SRC_MEDIA_PACKET_H_
#define CALLIOPE_SRC_MEDIA_PACKET_H_

#include <cstdint>
#include <vector>

#include "src/util/units.h"

namespace calliope {

enum MediaPacketFlags : uint32_t {
  kPacketNone = 0,
  // RTP-style control message interleaved with the data stream (§2.3.2:
  // "the RTP module interleaves the control messages with the rest of the
  // data stream before the data is given to the disk process").
  kPacketControl = 1u << 0,
  // Intra-coded (key) frame start; the offline fast-forward filter keeps
  // only these.
  kPacketKeyframe = 1u << 1,
  // First packet of a media frame (frame boundary marker).
  kPacketFrameStart = 1u << 2,
};

struct MediaPacket {
  SimTime delivery_offset;  // when to send, relative to recording start
  Bytes size;
  uint32_t flags = kPacketNone;
  // Sender-generated protocol timestamp (e.g. RTP ts). Protocol modules may
  // derive the delivery schedule from this instead of arrival times, which
  // removes network-induced jitter from recordings (§2.3.2).
  uint32_t protocol_timestamp = 0;

  bool operator==(const MediaPacket&) const = default;
};

using PacketSequence = std::vector<MediaPacket>;

// Total payload bytes of a sequence.
Bytes TotalBytes(const PacketSequence& packets);

// Duration from first to last delivery offset (zero for <2 packets).
SimTime Duration(const PacketSequence& packets);

// Average data rate over the sequence duration.
DataRate AverageRate(const PacketSequence& packets);

// Peak rate measured with a sliding window, the metric the paper uses for
// the NV files ("Measured using a 50 millisecond sliding window, the peak
// rates of the files ranged from 2.0 to 5.4 MBit/sec").
DataRate PeakRate(const PacketSequence& packets, SimTime window);

}  // namespace calliope

#endif  // CALLIOPE_SRC_MEDIA_PACKET_H_
