// Synthetic MPEG-1 elementary stream model.
//
// Structure-accurate, content-free: a stream is a sequence of I/P/B frames in
// a fixed group-of-pictures pattern ("intra-encoding is used for every N-th
// frame, where N is a parameter determined at the time of encoding
// (typically, fifteen to thirty)"). The encoded stream is *opaque* — the MSU
// never parses it in real time — so fast-forward/fast-backward variants are
// produced by the offline filter below, exactly as the paper's
// administrator-run filtering program does (§2.3.1).
#ifndef CALLIOPE_SRC_MEDIA_MPEG_H_
#define CALLIOPE_SRC_MEDIA_MPEG_H_

#include <cstdint>
#include <vector>

#include "src/media/packet.h"
#include "src/util/rng.h"

namespace calliope {

struct MpegFrame {
  enum class Type { kIntra, kPredicted, kBidirectional };
  Type type;
  Bytes size;
};

struct MpegStream {
  double fps = 30.0;
  DataRate nominal_rate = DataRate::MegabitsPerSec(1.5);
  std::vector<MpegFrame> frames;

  SimTime duration() const {
    return SimTime::SecondsF(static_cast<double>(frames.size()) / fps);
  }
  Bytes total_bytes() const;
};

struct MpegEncoderConfig {
  double fps = 30.0;
  DataRate rate = DataRate::MegabitsPerSec(1.5);
  int gop_size = 15;          // N: I-frame every 15 frames
  int bidir_run = 2;          // M-1: B-frames between reference frames
  double i_size_factor = 3.0;  // relative to the average frame size
  double p_size_factor = 1.3;
  double size_jitter = 0.15;   // +/- relative noise on frame sizes
};

// Produces a synthetic stream whose average rate matches config.rate.
MpegStream EncodeMpeg(const MpegEncoderConfig& config, SimTime duration, uint64_t seed);

// Offline fast-forward filter: keeps every `keep_every`-th frame (the intra
// frames when keep_every == gop_size), recompresses each kept frame back to
// the nominal average size so the filtered stream plays at the same bit rate
// and consumes the same disk/network slots as the original.
MpegStream FilterFastForward(const MpegStream& stream, int keep_every);

// Fast-backward: same selection, frames stored in reverse order.
MpegStream FilterFastBackward(const MpegStream& stream, int keep_every);

// Packetizes a (constant-rate) stream into fixed-size packets paced
// uniformly, which is how constant bit-rate content is replayed — "the
// delivery schedule is calculated rather than stored". Keyframe boundaries
// are flagged for tests; the MSU treats the body as opaque.
PacketSequence PacketizeCbr(const MpegStream& stream, Bytes packet_size);

}  // namespace calliope

#endif  // CALLIOPE_SRC_MEDIA_MPEG_H_
