// Synthetic MPEG-1 video *bitstream* serialization and parsing.
//
// §2.3.1 rejects dynamic fast-forward partly because "the MPEG encoders that
// we have produce an opaque stream with no framing information. While
// recording, the MSU would have to search the stream to find the intra-coded
// frames. Parsing the MPEG stream is too expensive to do in real time."
//
// To make that claim measurable, this module can serialize an MpegStream into
// an actual byte stream with ISO 11172-2 start codes (sequence, GOP, picture
// headers carrying the picture type, slice data as filler) and parse it back
// by scanning for start codes — the exact byte-scan a dynamic filter would
// run. bench/dynamic_ff charges the scan against the 66 MHz CPU model.
#ifndef CALLIOPE_SRC_MEDIA_MPEG_BITSTREAM_H_
#define CALLIOPE_SRC_MEDIA_MPEG_BITSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/media/mpeg.h"
#include "src/util/status.h"

namespace calliope {

// ISO 11172-2 start codes (the byte following 00 00 01).
inline constexpr uint8_t kSequenceHeaderCode = 0xB3;
inline constexpr uint8_t kGroupStartCode = 0xB8;
inline constexpr uint8_t kPictureStartCode = 0x00;
inline constexpr uint8_t kSequenceEndCode = 0xB7;

// Serializes the frame structure into a byte stream: a sequence header, then
// per GOP a group header, then per frame a picture header (with the 3-bit
// picture_coding_type) followed by `frame.size` bytes of slice filler that is
// guaranteed not to contain start-code emulation.
std::vector<std::byte> SerializeMpegBitstream(const MpegStream& stream);

struct ParsedPicture {
  size_t byte_offset = 0;        // offset of the 00 00 01 00 picture header
  MpegFrame::Type type = MpegFrame::Type::kIntra;
  size_t coded_size = 0;         // bytes to the next start code
};

struct ParsedMpeg {
  double fps = 0;
  std::vector<ParsedPicture> pictures;
  size_t gop_count = 0;
};

// Scans the stream for start codes and recovers the picture structure —
// the work a dynamic fast-forward filter would do per recorded byte.
Result<ParsedMpeg> ParseMpegBitstream(const std::vector<std::byte>& bytes);

// The byte-scan cost model used to charge the parse against the simulated
// CPU: a 66 MHz Pentium start-code scanner runs at roughly memory read speed
// divided by the per-byte compare/branch work (~4 cycles/byte with the
// three-byte state machine), i.e. ~16 MB/s — comparable to the whole
// machine's memory copy bandwidth, which is why it cannot run inline with
// the 4.7 MB/s data path.
inline constexpr double kParseCyclesPerByte = 4.0;
inline constexpr double kPentiumHz = 66e6;

inline SimTime ParseCpuTime(Bytes scanned) {
  return SimTime::SecondsF(static_cast<double>(scanned.count()) * kParseCyclesPerByte /
                           kPentiumHz);
}

}  // namespace calliope

#endif  // CALLIOPE_SRC_MEDIA_MPEG_BITSTREAM_H_
