#include "src/media/mpeg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace calliope {

Bytes MpegStream::total_bytes() const {
  Bytes total;
  for (const auto& frame : frames) {
    total += frame.size;
  }
  return total;
}

MpegStream EncodeMpeg(const MpegEncoderConfig& config, SimTime duration, uint64_t seed) {
  assert(config.gop_size > 0);
  MpegStream stream;
  stream.fps = config.fps;
  stream.nominal_rate = config.rate;
  Rng rng(seed);

  const int64_t frame_count = static_cast<int64_t>(duration.seconds() * config.fps);
  const double avg_frame_bytes =
      static_cast<double>(config.rate.bytes_per_sec()) / config.fps;

  // Normalize the per-type factors so one GOP averages to avg_frame_bytes.
  double gop_weight = 0;
  std::vector<MpegFrame::Type> pattern;
  for (int i = 0; i < config.gop_size; ++i) {
    MpegFrame::Type type;
    if (i == 0) {
      type = MpegFrame::Type::kIntra;
      gop_weight += config.i_size_factor;
    } else if ((i % (config.bidir_run + 1)) == 0) {
      type = MpegFrame::Type::kPredicted;
      gop_weight += config.p_size_factor;
    } else {
      type = MpegFrame::Type::kBidirectional;
      gop_weight += 1.0;
    }
    pattern.push_back(type);
  }
  const double unit = avg_frame_bytes * config.gop_size / gop_weight;

  stream.frames.reserve(static_cast<size_t>(frame_count));
  for (int64_t i = 0; i < frame_count; ++i) {
    const MpegFrame::Type type = pattern[static_cast<size_t>(i % config.gop_size)];
    double factor = 1.0;
    if (type == MpegFrame::Type::kIntra) {
      factor = config.i_size_factor;
    } else if (type == MpegFrame::Type::kPredicted) {
      factor = config.p_size_factor;
    }
    const double jitter = 1.0 + config.size_jitter * (2.0 * rng.NextDouble() - 1.0);
    stream.frames.push_back(
        MpegFrame{type, Bytes(static_cast<int64_t>(unit * factor * jitter))});
  }
  return stream;
}

namespace {

MpegStream FilterCommon(const MpegStream& stream, int keep_every, bool reverse) {
  assert(keep_every > 0);
  MpegStream filtered;
  filtered.fps = stream.fps;
  filtered.nominal_rate = stream.nominal_rate;
  const double avg_frame_bytes =
      static_cast<double>(stream.nominal_rate.bytes_per_sec()) / stream.fps;
  for (size_t i = 0; i < stream.frames.size(); i += static_cast<size_t>(keep_every)) {
    // Recompressed: every kept frame becomes an intra frame at the nominal
    // average size, so the filtered file has the same content type (and thus
    // the same bandwidth reservation) as the original.
    filtered.frames.push_back(
        MpegFrame{MpegFrame::Type::kIntra, Bytes(static_cast<int64_t>(avg_frame_bytes))});
  }
  if (reverse) {
    std::reverse(filtered.frames.begin(), filtered.frames.end());
  }
  return filtered;
}

}  // namespace

MpegStream FilterFastForward(const MpegStream& stream, int keep_every) {
  return FilterCommon(stream, keep_every, /*reverse=*/false);
}

MpegStream FilterFastBackward(const MpegStream& stream, int keep_every) {
  return FilterCommon(stream, keep_every, /*reverse=*/true);
}

PacketSequence PacketizeCbr(const MpegStream& stream, Bytes packet_size) {
  PacketSequence packets;
  const Bytes total = stream.total_bytes();
  const int64_t count = (total.count() + packet_size.count() - 1) / packet_size.count();
  if (count == 0) {
    return packets;
  }
  const SimTime duration = stream.duration();
  const SimTime interval = duration / count;
  packets.reserve(static_cast<size_t>(count));

  // Walk frames to mark which packet begins at (or spans) a keyframe.
  size_t frame_index = 0;
  Bytes frame_remaining = stream.frames.empty() ? Bytes(0) : stream.frames[0].size;
  Bytes left = total;
  for (int64_t i = 0; i < count; ++i) {
    MediaPacket packet;
    packet.delivery_offset = interval * i;
    packet.size = std::min(packet_size, left);
    left -= packet.size;
    packet.protocol_timestamp = static_cast<uint32_t>(packet.delivery_offset.millis() * 90);
    Bytes packet_left = packet.size;
    while (packet_left > Bytes(0) && frame_index < stream.frames.size()) {
      if (frame_remaining == stream.frames[frame_index].size) {
        packet.flags |= kPacketFrameStart;
        if (stream.frames[frame_index].type == MpegFrame::Type::kIntra) {
          packet.flags |= kPacketKeyframe;
        }
      }
      const Bytes used = std::min(packet_left, frame_remaining);
      packet_left -= used;
      frame_remaining -= used;
      if (frame_remaining == Bytes(0)) {
        ++frame_index;
        if (frame_index < stream.frames.size()) {
          frame_remaining = stream.frames[frame_index].size;
        }
      }
    }
    packets.push_back(packet);
  }
  return packets;
}

}  // namespace calliope
