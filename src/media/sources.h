// Workload sources: constant-rate (MPEG-1-like) and variable-rate (NV-like)
// packet generators, calibrated to the paper's evaluation streams.
#ifndef CALLIOPE_SRC_MEDIA_SOURCES_H_
#define CALLIOPE_SRC_MEDIA_SOURCES_H_

#include <cstdint>

#include "src/media/packet.h"
#include "src/util/rng.h"

namespace calliope {

// Constant bit-rate source: fixed-size packets at fixed intervals. The paper
// uses 1.5 Mbit/s MPEG-1 in 4 KB FDDI packets (Graph 1); the delivery
// schedule for such streams "is calculated rather than stored".
struct CbrSourceConfig {
  DataRate rate = DataRate::MegabitsPerSec(1.5);
  Bytes packet_size = Bytes::KiB(4);
};

PacketSequence GenerateCbr(const CbrSourceConfig& config, SimTime duration);

// Variable bit-rate source modeling NV ("Experiences with real-time software
// video compression") software video: the encoder emits each frame "as
// quickly as possible, resulting in bursts of back-to-back packets" of ~1 KB.
// Frame sizes vary widely, so 50-ms-window peak rates reach several Mbit/s
// while averages stay under 1 Mbit/s.
struct VbrSourceConfig {
  DataRate target_average = DataRate::KilobitsPerSec(650);
  double frames_per_sec = 8.0;         // NV-era software coder frame rate
  Bytes packet_size = Bytes(1024);     // "Most of the packets ... about one KByte"
  double size_dispersion = 0.6;        // lognormal sigma of frame size
  double scene_change_prob = 0.05;     // occasional large frames
  double scene_change_multiplier = 3.0;
  // Largest frame, as a multiple of the mean: bounds the 50 ms-window peak
  // rate (the paper's files peak at 2.0-5.4 Mbit/s) and keeps each burst
  // inside its frame interval.
  double max_frame_multiplier = 3.2;
  // Back-to-back spacing within a burst: the encoder writes packets as fast
  // as it can push them to the socket.
  SimTime burst_packet_spacing = SimTime::Micros(900);
  uint64_t seed = 1;
};

PacketSequence GenerateVbr(const VbrSourceConfig& config, SimTime duration);

// The three NV-encoded files used in Graph 2, with average rates of 650, 635
// and 877 Kbit/s. index in [0, 3).
VbrSourceConfig Graph2File(int index);

}  // namespace calliope

#endif  // CALLIOPE_SRC_MEDIA_SOURCES_H_
