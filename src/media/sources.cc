#include "src/media/sources.h"

#include <algorithm>
#include <cmath>

namespace calliope {

PacketSequence GenerateCbr(const CbrSourceConfig& config, SimTime duration) {
  PacketSequence packets;
  const SimTime interval = config.rate.TransferTime(config.packet_size);
  const int64_t count = duration / interval;
  packets.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    MediaPacket packet;
    packet.delivery_offset = interval * i;
    packet.size = config.packet_size;
    packet.flags = kPacketFrameStart;
    packet.protocol_timestamp = static_cast<uint32_t>(packet.delivery_offset.millis());
    packets.push_back(packet);
  }
  return packets;
}

PacketSequence GenerateVbr(const VbrSourceConfig& config, SimTime duration) {
  PacketSequence packets;
  Rng rng(config.seed);
  const SimTime frame_interval = SimTime::SecondsF(1.0 / config.frames_per_sec);
  const double mean_frame_bytes =
      static_cast<double>(config.target_average.bytes_per_sec()) / config.frames_per_sec;
  // Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
  const double sigma = config.size_dispersion;
  // Scene changes inflate the expectation; compensate so the average holds.
  const double scene_inflation =
      1.0 + config.scene_change_prob * (config.scene_change_multiplier - 1.0);
  const double mu = std::log(mean_frame_bytes / scene_inflation) - sigma * sigma / 2.0;

  for (SimTime t; t < duration; t += frame_interval) {
    double frame_bytes = std::exp(rng.NextNormal(mu, sigma));
    if (rng.NextBernoulli(config.scene_change_prob)) {
      frame_bytes *= config.scene_change_multiplier;
    }
    frame_bytes = std::min(frame_bytes, mean_frame_bytes * config.max_frame_multiplier);
    // At least one packet per frame; split into ~1 KB bursts.
    const int64_t full_packets =
        static_cast<int64_t>(frame_bytes) / config.packet_size.count();
    const int64_t remainder =
        static_cast<int64_t>(frame_bytes) % config.packet_size.count();
    int64_t packet_index = 0;
    auto emit = [&](Bytes size, bool first) {
      MediaPacket packet;
      packet.delivery_offset = t + config.burst_packet_spacing * packet_index++;
      packet.size = size;
      packet.flags = first ? kPacketFrameStart : kPacketNone;
      packet.protocol_timestamp = static_cast<uint32_t>(t.millis() * 90);  // 90 kHz RTP clock
      packets.push_back(packet);
    };
    for (int64_t p = 0; p < full_packets; ++p) {
      emit(config.packet_size, p == 0);
    }
    if (remainder > 0 || full_packets == 0) {
      emit(Bytes(std::max<int64_t>(remainder, 64)), full_packets == 0);
    }
  }
  return packets;
}

VbrSourceConfig Graph2File(int index) {
  VbrSourceConfig config;
  switch (index % 3) {
    case 0:
      config.target_average = DataRate::KilobitsPerSec(650);
      config.seed = 0xA11CE;
      break;
    case 1:
      config.target_average = DataRate::KilobitsPerSec(635);
      config.seed = 0xB0B;
      break;
    default:
      config.target_average = DataRate::KilobitsPerSec(877);
      config.size_dispersion = 0.7;
      config.seed = 0xCAB;
      break;
  }
  return config;
}

}  // namespace calliope
