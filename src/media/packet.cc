#include "src/media/packet.h"

#include <algorithm>

namespace calliope {

Bytes TotalBytes(const PacketSequence& packets) {
  Bytes total;
  for (const auto& packet : packets) {
    total += packet.size;
  }
  return total;
}

SimTime Duration(const PacketSequence& packets) {
  if (packets.size() < 2) {
    return SimTime();
  }
  return packets.back().delivery_offset - packets.front().delivery_offset;
}

DataRate AverageRate(const PacketSequence& packets) {
  const SimTime duration = Duration(packets);
  if (duration <= SimTime()) {
    return DataRate();
  }
  const double bytes_per_sec = static_cast<double>(TotalBytes(packets).count()) / duration.seconds();
  return DataRate::BytesPerSec(static_cast<int64_t>(bytes_per_sec));
}

DataRate PeakRate(const PacketSequence& packets, SimTime window) {
  if (packets.empty() || window <= SimTime()) {
    return DataRate();
  }
  DataRate peak;
  size_t tail = 0;
  Bytes in_window;
  for (size_t head = 0; head < packets.size(); ++head) {
    in_window += packets[head].size;
    while (packets[head].delivery_offset - packets[tail].delivery_offset > window) {
      in_window -= packets[tail].size;
      ++tail;
    }
    const double bytes_per_sec = static_cast<double>(in_window.count()) / window.seconds();
    peak = std::max(peak, DataRate::BytesPerSec(static_cast<int64_t>(bytes_per_sec)));
  }
  return peak;
}

}  // namespace calliope
