#include "src/media/mpeg_bitstream.h"

#include <cassert>

namespace calliope {

namespace {

void PutStartCode(std::vector<std::byte>& out, uint8_t code) {
  out.push_back(std::byte{0x00});
  out.push_back(std::byte{0x00});
  out.push_back(std::byte{0x01});
  out.push_back(std::byte{code});
}

uint8_t PictureTypeBits(MpegFrame::Type type) {
  switch (type) {
    case MpegFrame::Type::kIntra:
      return 1;
    case MpegFrame::Type::kPredicted:
      return 2;
    case MpegFrame::Type::kBidirectional:
      return 3;
  }
  return 1;
}

MpegFrame::Type TypeFromBits(uint8_t bits) {
  switch (bits) {
    case 1:
      return MpegFrame::Type::kIntra;
    case 2:
      return MpegFrame::Type::kPredicted;
    default:
      return MpegFrame::Type::kBidirectional;
  }
}

}  // namespace

std::vector<std::byte> SerializeMpegBitstream(const MpegStream& stream) {
  std::vector<std::byte> out;
  out.reserve(static_cast<size_t>(stream.total_bytes().count()) + stream.frames.size() * 16 + 64);

  // Sequence header: start code + 8 bytes (width/height/rates, synthetic).
  PutStartCode(out, kSequenceHeaderCode);
  for (int i = 0; i < 8; ++i) {
    out.push_back(std::byte{0x55});
  }

  int frame_in_gop = 0;
  uint16_t temporal_reference = 0;
  for (const MpegFrame& frame : stream.frames) {
    if (frame.type == MpegFrame::Type::kIntra) {
      PutStartCode(out, kGroupStartCode);
      for (int i = 0; i < 4; ++i) {  // time code
        out.push_back(std::byte{0x44});
      }
      frame_in_gop = 0;
      temporal_reference = 0;
    }
    ++frame_in_gop;
    // Picture header: start code + temporal ref (2B) + type byte + vbv (2B).
    // High bits are set on every header byte so the payload can never
    // emulate a 00 00 01 start-code prefix.
    PutStartCode(out, kPictureStartCode);
    out.push_back(static_cast<std::byte>(0x80 | ((temporal_reference >> 8) & 0x7F)));
    out.push_back(static_cast<std::byte>(0x80 | (temporal_reference & 0x7F)));
    ++temporal_reference;
    out.push_back(static_cast<std::byte>(0x80 | PictureTypeBits(frame.type)));
    out.push_back(std::byte{0xBF});
    out.push_back(std::byte{0xBF});

    // Slice payload: filler with no 00 00 01 emulation (never two zero bytes
    // in a row). Sized to the frame's coded size.
    const auto payload = static_cast<size_t>(frame.size.count());
    for (size_t i = 0; i < payload; ++i) {
      out.push_back(i % 2 == 0 ? std::byte{0xA5} : std::byte{0x5A});
    }
  }
  PutStartCode(out, kSequenceEndCode);
  return out;
}

Result<ParsedMpeg> ParseMpegBitstream(const std::vector<std::byte>& bytes) {
  ParsedMpeg parsed;
  if (bytes.size() < 12) {
    return DataLossError("mpeg stream truncated");
  }

  // Start-code scan: the three-byte 00 00 01 state machine every real
  // MPEG demultiplexer runs.
  size_t last_picture_offset = 0;
  bool have_picture = false;
  bool saw_sequence = false;
  auto close_picture = [&](size_t here) {
    if (have_picture && !parsed.pictures.empty()) {
      // Coded size runs from the picture start code to this start code.
      parsed.pictures.back().coded_size = here - last_picture_offset;
    }
    have_picture = false;
  };

  size_t i = 0;
  const size_t n = bytes.size();
  while (i + 3 < n) {
    if (bytes[i] != std::byte{0x00} || bytes[i + 1] != std::byte{0x00} ||
        bytes[i + 2] != std::byte{0x01}) {
      ++i;
      continue;
    }
    const auto code = static_cast<uint8_t>(bytes[i + 3]);
    if (code == kSequenceHeaderCode) {
      saw_sequence = true;
      close_picture(i);
    } else if (code == kGroupStartCode) {
      close_picture(i);
      ++parsed.gop_count;
    } else if (code == kPictureStartCode) {
      close_picture(i);
      if (i + 6 >= n) {
        return DataLossError("picture header truncated");
      }
      ParsedPicture picture;
      picture.byte_offset = i;
      picture.type = TypeFromBits(static_cast<uint8_t>(bytes[i + 6]) & 0x7F);
      parsed.pictures.push_back(picture);
      have_picture = true;
      last_picture_offset = i;
    } else if (code == kSequenceEndCode) {
      close_picture(i);
    }
    i += 4;
  }
  if (!saw_sequence) {
    return DataLossError("no sequence header");
  }
  if (parsed.pictures.empty()) {
    return DataLossError("no pictures");
  }
  return parsed;
}

}  // namespace calliope
