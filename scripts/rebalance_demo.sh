#!/usr/bin/env bash
# Runs the scaleout bench's flash-crowd rebalancing sweep — the same crowd of
# viewers against a static replica set (overflow starves) and against the
# background rebalancer (hot title is copied to the idle MSU, the queue
# drains) — and prints where the JSON verdicts landed. Usage:
#
#   scripts/rebalance_demo.sh [build-dir]
#
# Override the JSON output path with CALLIOPE_REBALANCE_JSON=/path/to/out.json.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${CALLIOPE_REBALANCE_JSON:-${PWD}/BENCH_scaleout.json}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target scaleout

"${BUILD_DIR}/bench/scaleout" --rebalance --json="${OUT}"

echo
echo "Static-vs-dynamic flash-crowd verdicts written to: ${OUT}"
echo "(rebalance section: admissions, rejections at the checkpoint,"
echo "convergence time, copies installed/demoted, lateness quantiles)."
echo
echo "Watch the copy itself in a Chrome trace:"
echo "  CALLIOPE_TRACE=rebalance_trace.json ${BUILD_DIR}/bench/scaleout --rebalance"
echo "then open rebalance_trace.json at https://ui.perfetto.dev"
