#!/usr/bin/env bash
# Builds the tree with ASan+UBSan (the CALLIOPE_SANITIZE cmake option) and
# runs the full tier-1 ctest suite under it. Usage:
#
#   scripts/check_sanitize.sh [build-dir] [extra ctest args...]
#
# e.g. `scripts/check_sanitize.sh build-asan -R chaos` to sweep only the
# seeded chaos tests under the sanitizers.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
shift || true

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCALLIOPE_SANITIZE="address;undefined"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error so ctest fails loudly instead of logging and limping on.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"
