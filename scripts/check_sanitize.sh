#!/usr/bin/env bash
# Builds the tree under sanitizers (the CALLIOPE_SANITIZE cmake option) and
# runs the full tier-1 ctest suite under them. Usage:
#
#   scripts/check_sanitize.sh [--tsan] [build-dir] [extra ctest args...]
#
# Default is ASan+UBSan in build-asan; --tsan switches to ThreadSanitizer in
# build-tsan (the simulator is single-threaded by design — TSan documents
# that and guards the few std::thread touchpoints in the harness).
# e.g. `scripts/check_sanitize.sh build-asan -R chaos` to sweep only the
# seeded chaos tests under the sanitizers.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="address;undefined"
DEFAULT_DIR="build-asan"
if [[ "${1:-}" == "--tsan" ]]; then
  SANITIZERS="thread"
  DEFAULT_DIR="build-tsan"
  shift
fi
BUILD_DIR="${1:-${DEFAULT_DIR}}"
shift || true

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCALLIOPE_SANITIZE="${SANITIZERS}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error so ctest fails loudly instead of logging and limping on.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"

# The hybrid-fidelity suite gets an explicit pass: the flow<->packet
# promotion machinery hands page buffers between two delivery loops, which
# is exactly where a lifetime bug would hide from the default-mode tests.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L '^fidelity$'

# The stream-sharing suite too: shared fan-out iterates member lists that VCR
# splits mutate across suspension points, and the page cache hands out
# borrowed DataPage pointers — both prime use-after-free territory.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L '^sharing$'

# The continuous-telemetry suite: the sampler's self-rescheduling tick holds
# raw instrument pointers and the QoS accumulator is fed from the delivery
# hot paths — the places a dangling-pointer bug would live.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L '^slo$'

# The rebalancing suite: background copy ops are cancelled from three sides
# (preemption, MSU crash, primary flip) while a pull coroutine is suspended
# mid-transfer — exactly where a use-after-free or double-release of duty
# slots / ledger holds would hide.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L '^rebalance$'

# The overload-control suite: the shed governor erases pending requests and
# aborts replication ops while retry/expiry coroutines may be suspended over
# the same deque, and the workload driver runs hundreds of short-lived
# session coroutines against it — prime iterator-invalidation and
# use-after-free territory under all three sanitizers.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L '^load$'

# The warm-standby coordinator suite gets an explicit pass under TSan: the
# takeover path is where cross-coroutine state handoff concentrates. (The
# label regex is anchored because "chaos" contains "ha".)
if [[ "${SANITIZERS}" == "thread" ]]; then
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L '^ha$'
fi
