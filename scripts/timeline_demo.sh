#!/usr/bin/env bash
# Runs the scaleout bench's continuous-telemetry scenario — a disk-slowdown
# fault window surfacing as a lateness-SLO breach — and prints where the
# per-window timeline CSV landed, plus one-liners to plot it. Usage:
#
#   scripts/timeline_demo.sh [build-dir]
#
# Override the CSV path with CALLIOPE_TIMELINE_CSV=/path/to/timeline.csv.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${CALLIOPE_TIMELINE_CSV:-${PWD}/timeline.csv}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target scaleout

CALLIOPE_BENCH_FAST=1 "${BUILD_DIR}/bench/scaleout" --slo --timeline-csv="${OUT}"

echo
echo "Per-window timeline CSV written to: ${OUT}"
echo "One row per sampling window: QoS columns (lateness p50/p99/max, gap,"
echo "pending depth, cache mix) then one slo.<name> value column per monitor."
echo
echo "Plot the lateness-p99 timeline with gnuplot:"
echo "  gnuplot -e \"set datafile separator ','; set key autotitle columnhead;"
echo "    plot '${OUT}' using 2:6 with lines\" -p"
echo "or with python:"
echo "  python3 -c \"import csv,sys; r=list(csv.DictReader(open('${OUT}')));"
echo "    [print(x['end_us'], x['lateness_p99_us']) for x in r]\""
