#!/usr/bin/env bash
# Runs the scaleout bench's overload-control sweep — the same ~2x-capacity
# workload (Zipf titles, channel surfers, archive pulls, record-while-play)
# with traffic control off (the pending queue balloons and the depth SLO
# breaches) and on (the SLO-driven governor sheds standard/bulk load with
# explicit notices while interactive sessions hold their lateness SLO) —
# and prints where the JSON verdicts landed. Usage:
#
#   scripts/load_demo.sh [build-dir]
#
# Override the JSON output path with CALLIOPE_LOAD_JSON=/path/to/out.json.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${CALLIOPE_LOAD_JSON:-${PWD}/BENCH_scaleout.json}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target scaleout

"${BUILD_DIR}/bench/scaleout" --load --json="${OUT}"

echo
echo "Shed-on/off saturation verdicts written to: ${OUT}"
echo "(load section: goodput, per-class refusal and shed counts, queue-depth"
echo "SLO breach episodes, interactive p99 lateness)."
echo
echo "Watch the shed/clear episodes in a Chrome trace:"
echo "  CALLIOPE_TRACE=load_trace.json ${BUILD_DIR}/bench/scaleout --load"
echo "then open load_trace.json at https://ui.perfetto.dev"
