#!/usr/bin/env bash
# Demonstrates warm-standby Coordinator takeover end to end: boots an
# installation with a standby coordinator, plays streams, kills the primary
# mid-workload and shows the takeover timeline from the Chrome trace. Usage:
#
#   scripts/ha_demo.sh [build-dir]
#
# Override the trace output path with CALLIOPE_TRACE=/path/to/trace.json.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${CALLIOPE_TRACE:-${PWD}/trace_ha_takeover.json}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target ha_test

# One test => one Installation => the trace holds the whole scenario: three
# admitted streams, the primary crash, the epoch-fenced takeover, MSU and
# client redials, and a post-takeover admission served by the survivor.
CALLIOPE_TRACE="${OUT}" "${BUILD_DIR}/tests/ha_test" \
  --gtest_filter='HaTest.KillPrimaryMidWorkloadKeepsAdmittedStreams'

echo
echo "Chrome trace written to: ${OUT}"
echo "Open it at https://ui.perfetto.dev (or chrome://tracing)."
echo
echo "Failover timeline (takeover / stepdown instants from the trace):"
grep -o '[^{]*"name":"\(takeover\|stepdown\)"[^}]*}' "${OUT}" | head -10 || true
