#!/usr/bin/env bash
# Runs the scaleout bench's failover scenario with tracing on and prints where
# the Chrome trace-event JSON landed. Usage:
#
#   scripts/trace_demo.sh [build-dir]
#
# Override the output path with CALLIOPE_TRACE=/path/to/trace.json.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${CALLIOPE_TRACE:-${PWD}/trace_failover.json}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target scaleout

# One policy => one Installation => the trace file holds that whole scenario:
# admissions, stream lifetimes, per-disk block service, RPCs, crash, failover.
CALLIOPE_BENCH_FAST=1 CALLIOPE_TRACE="${OUT}" \
  "${BUILD_DIR}/bench/scaleout" --failover-only --policy=replica-aware --report

echo
echo "Chrome trace written to: ${OUT}"
echo "Open it at https://ui.perfetto.dev (or chrome://tracing) — one row per"
echo "track: coordinator, each MSU, each MSU disk, net, fault."
