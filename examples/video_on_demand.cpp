// Video-on-demand: a three-MSU installation serving a neighborhood of
// viewers, the paper's headline application. Demonstrates multi-MSU
// placement, request queueing when a box fills up, MSU failure and recovery,
// and the load the Coordinator sees.
//
//   $ ./build/examples/video_on_demand
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/util/rng.h"

using namespace calliope;

namespace {

struct Viewer {
  std::unique_ptr<bool> started = std::make_unique<bool>(false);
  GroupId group = 0;
};

Task WatchMovie(CalliopeClient* client, std::string movie, std::string port, Viewer* viewer) {
  if (!(co_await client->RegisterPort(port, "mpeg1")).ok()) {
    co_return;
  }
  auto play = co_await client->Play(movie, port);
  if (!play.ok()) {
    std::printf("  viewer on %-12s rejected: %s\n", port.c_str(),
                play.status().ToString().c_str());
    co_return;
  }
  viewer->group = play->group;
  *viewer->started = true;
  if (play->queued) {
    std::printf("  viewer on %-12s queued (no resources yet)\n", port.c_str());
  }
}

}  // namespace

int main() {
  InstallationConfig config;
  config.msu_count = 3;
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return 1;
  }
  std::printf("three MSUs up: %zu disks total\n\n", calliope.msu(0).machine().disk_count() * 3);

  // A small library spread across the MSUs by the emptiest-disk policy.
  const std::vector<std::string> titles = {"heat", "casino", "babe",     "seven",
                                           "toy-story", "goldeneye", "apollo13", "jumanji"};
  for (size_t i = 0; i < titles.size(); ++i) {
    if (Status s = calliope.LoadMpegMovie(titles[i], SimTime::Seconds(300), i % 3, true);
        !s.ok()) {
      std::fprintf(stderr, "load %s: %s\n", titles[i].c_str(), s.ToString().c_str());
      return 1;
    }
  }

  // Thirty viewers pick movies with a popularity skew.
  CalliopeClient& client = calliope.AddClient("neighborhood");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  calliope.sim().RunFor(SimTime::Seconds(1));

  Rng rng(7);
  ZipfDistribution zipf(titles.size(), 1.0);
  std::vector<Viewer> viewers(30);
  std::printf("30 viewers tuning in...\n");
  for (size_t v = 0; v < viewers.size(); ++v) {
    WatchMovie(&client, titles[zipf.Sample(rng)], "tv" + std::to_string(v), &viewers[v]);
  }
  calliope.sim().RunFor(SimTime::Seconds(5));
  std::printf("active streams: %zu, queued requests: %zu\n\n",
              calliope.coordinator().active_stream_count(),
              calliope.coordinator().pending_request_count());

  // Some viewers drive the VCR.
  [](CalliopeClient* c, GroupId g) -> Task {
    co_await c->Vcr(g, VcrCommand::Op::kPause);
  }(&client, viewers[0].group);
  [](CalliopeClient* c, GroupId g) -> Task {
    co_await c->Vcr(g, VcrCommand::Op::kSeek, SimTime::Seconds(120));
  }(&client, viewers[1].group);
  [](CalliopeClient* c, GroupId g) -> Task {
    co_await c->Vcr(g, VcrCommand::Op::kFastForward);
  }(&client, viewers[2].group);
  calliope.sim().RunFor(SimTime::Seconds(10));

  // An MSU dies mid-show; the Coordinator notices via the broken TCP
  // connection, and the box comes back a few seconds later.
  std::printf("msu1 crashes...\n");
  calliope.msu(1).Crash();
  calliope.sim().RunFor(SimTime::Seconds(2));
  std::printf("coordinator sees msu1 up=%s; active streams now %zu\n",
              calliope.coordinator().MsuUp("msu1") ? "yes" : "no",
              calliope.coordinator().active_stream_count());
  [](Msu* msu) -> Task { co_await msu->Restart("coordinator"); }(&calliope.msu(1));
  calliope.sim().RunFor(SimTime::Seconds(2));
  std::printf("msu1 restarted; up=%s (content on its disks survived)\n\n",
              calliope.coordinator().MsuUp("msu1") ? "yes" : "no");

  // Watch for a while and report per-viewer delivery quality.
  calliope.sim().RunFor(SimTime::Seconds(20));
  int64_t delivered = 0;
  int happy = 0, watching = 0;
  for (size_t v = 0; v < viewers.size(); ++v) {
    const ClientDisplayPort* port = client.FindPort("tv" + std::to_string(v));
    if (port == nullptr || port->packets_received() == 0) {
      continue;
    }
    ++watching;
    delivered += port->packets_received();
    if (port->glitches() == 0) {
      ++happy;
    }
  }
  std::printf("%d viewers receiving video (%d glitch-free), %lld packets delivered\n", watching,
              happy, static_cast<long long>(delivered));
  std::printf("coordinator handled %lld control messages total\n",
              static_cast<long long>(calliope.coordinator().requests_handled()));
  return 0;
}
