// Quickstart: boot a one-MSU Calliope installation, load a movie, play it,
// and watch the delivery statistics — the smallest end-to-end use of the
// public API.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/calliope/calliope.h"

using namespace calliope;

namespace {

// Helper: run the simulation until `done` flips or `timeout` passes.
bool Pump(Simulator& sim, const bool& done, SimTime timeout) {
  const SimTime deadline = sim.Now() + timeout;
  while (!done && sim.Now() < deadline) {
    sim.RunFor(SimTime::Millis(10));
  }
  return done;
}

}  // namespace

int main() {
  // 1. Build an installation: a Coordinator plus one MSU (two disks on one
  //    SCSI chain — the paper's measurement configuration), all inside a
  //    deterministic simulation.
  Installation calliope;
  if (Status booted = calliope.Boot(); !booted.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", booted.ToString().c_str());
    return 1;
  }
  std::printf("Booted: coordinator + %zu MSU(s); MSU0 free space %s\n", calliope.msu_count(),
              calliope.msu(0).fs().TotalFreeSpace().ToString().c_str());

  // 2. Load a two-minute synthetic MPEG-1 movie (with fast-forward and
  //    fast-backward variants produced by the offline filter).
  if (Status loaded =
          calliope.LoadMpegMovie("big-buck-bellcore", SimTime::Seconds(120), 0, true);
      !loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }

  // 3. Attach a client host to the delivery network and open a session.
  CalliopeClient& client = calliope.AddClient("livingroom");
  bool ready = false;
  GroupId group = 0;
  [](CalliopeClient* c, bool* done, GroupId* group_out) -> Task {
    if (Status s = co_await c->Connect("bob", "bob-key"); !s.ok()) {
      std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
      co_return;
    }
    // The table of contents, as a video-on-demand browser would fetch it.
    auto listing = co_await c->ListContent();
    if (listing.ok()) {
      for (const ContentInfo& info : *listing) {
        std::printf("catalog: %-20s type=%-10s duration=%-8s fast-scan=%s\n", info.name.c_str(),
                    info.type.c_str(), info.duration.ToString().c_str(),
                    info.has_fast_scan ? "yes" : "no");
      }
    }
    // Register a display port (the software decoder's UDP socket) and play.
    if (!(co_await c->RegisterPort("tv", "mpeg1")).ok()) {
      co_return;
    }
    auto play = co_await c->Play("big-buck-bellcore", "tv");
    if (!play.ok()) {
      std::fprintf(stderr, "play: %s\n", play.status().ToString().c_str());
      co_return;
    }
    *group_out = play->group;
    *done = true;
  }(&client, &ready, &group);

  if (!Pump(calliope.sim(), ready, SimTime::Seconds(10))) {
    std::fprintf(stderr, "stream never started\n");
    return 1;
  }

  // 4. Watch 10 seconds of playback.
  calliope.sim().RunFor(SimTime::Seconds(10));
  const ClientDisplayPort* tv = client.FindPort("tv");
  std::printf("\nafter 10s: %lld packets (%s) received, worst arrival lateness %s\n",
              static_cast<long long>(tv->packets_received()),
              tv->bytes_received().ToString().c_str(),
              tv->arrival_lateness().MaxRecorded().ToString().c_str());

  // 5. Use the VCR: skip to the last 15 seconds, then fast-forward.
  bool vcr_done = false;
  [](CalliopeClient* c, GroupId g, bool* done) -> Task {
    co_await c->Vcr(g, VcrCommand::Op::kSeek, SimTime::Seconds(105));
    co_await c->Vcr(g, VcrCommand::Op::kFastForward);
    *done = true;
  }(&client, group, &vcr_done);
  Pump(calliope.sim(), vcr_done, SimTime::Seconds(10));

  // 6. Let the movie run out; the MSU terminates the stream itself.
  calliope.sim().RunFor(SimTime::Seconds(20));
  std::printf("stream over: %s; MSU sent %lld packets, %.1f%% within 50 ms of schedule\n",
              client.GroupTerminated(group) ? "yes" : "no",
              static_cast<long long>(calliope.msu(0).AggregateLateness().total_count()),
              100.0 * calliope.msu(0).AggregateLateness().FractionWithin(SimTime::Millis(50)));
  return 0;
}
