// Seminar recorder (§2.1/§2.2): records an MBone-style seminar as the
// composite "seminar" type — one RTP video stream plus one VAT audio stream
// in a single stream group — then replays it with an index that lets a
// viewer skip to the talk they care about. Stream groups keep both
// components on one MSU so VCR commands hit them simultaneously.
//
//   $ ./build/examples/seminar_recorder
#include <cstdio>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"

using namespace calliope;

namespace {

// A simple seminar index, as the paper's indexed-seminar application keeps.
struct IndexEntry {
  const char* speaker;
  SimTime offset;
};

}  // namespace

int main() {
  Installation calliope;
  if (!calliope.Boot().ok()) {
    return 1;
  }

  CalliopeClient& recorder = calliope.AddClient("lecture-hall");
  bool recorded = false;
  [](CalliopeClient* c, bool* done) -> Task {
    if (!(co_await c->Connect("alice", "alice-key")).ok()) {
      co_return;
    }
    // Component ports first, then the composite port built from them
    // ("Display ports for composite types can be constructed from
    // previously-registered display ports of the component types").
    if (!(co_await c->RegisterPort("cam", "rtp-video")).ok()) {
      co_return;
    }
    if (!(co_await c->RegisterPort("mic", "vat-audio")).ok()) {
      co_return;
    }
    std::vector<std::string> components = {"cam", "mic"};
    auto composite = co_await c->RegisterCompositePort("room", "seminar", std::move(components));
    if (!composite.ok()) {
      std::fprintf(stderr, "composite port: %s\n", composite.status().ToString().c_str());
      co_return;
    }

    auto record = co_await c->Record("usenix-seminar", "seminar", "room", SimTime::Seconds(60));
    if (!record.ok()) {
      std::fprintf(stderr, "record: %s\n", record.status().ToString().c_str());
      co_return;
    }
    std::printf("recording seminar as stream group %lld (video + audio on one MSU)\n",
                static_cast<long long>(record->group));

    // 30 seconds of camera video and microphone audio, fed concurrently.
    VbrSourceConfig video;
    video.target_average = DataRate::KilobitsPerSec(650);
    video.seed = 2026;
    VbrSourceConfig audio;
    audio.target_average = DataRate::KilobitsPerSec(64);
    audio.frames_per_sec = 25;  // small audio chunks
    audio.seed = 2027;
    const PacketSequence video_packets = GenerateVbr(video, SimTime::Seconds(30));
    const PacketSequence audio_packets = GenerateVbr(audio, SimTime::Seconds(30));
    auto video_sent = c->SendRecording(record->group, 0, video_packets);
    auto audio_sent = c->SendRecording(record->group, 1, audio_packets);
    auto video_count = co_await std::move(video_sent);
    auto audio_count = co_await std::move(audio_sent);
    std::printf("captured %lld video + %lld audio packets\n",
                video_count.ok() ? static_cast<long long>(*video_count) : -1,
                audio_count.ok() ? static_cast<long long>(*audio_count) : -1);
    co_await c->Quit(record->group);
    *done = true;
  }(&recorder, &recorded);

  while (!recorded && calliope.sim().Now() < SimTime::Seconds(90)) {
    calliope.sim().RunFor(SimTime::Millis(50));
  }
  if (!recorded) {
    std::fprintf(stderr, "seminar recording failed\n");
    return 1;
  }
  std::printf("\nseminar stored; catalog duration %s\n\n",
              calliope.coordinator()
                  .catalog()
                  .FindContent("usenix-seminar")
                  .value()
                  ->duration.ToString()
                  .c_str());

  // --- A viewer uses the index to jump between talks ---------------------
  const std::vector<IndexEntry> index = {
      {"Heybey: the MSU data path", SimTime::Seconds(2)},
      {"Sullivan: IB-trees", SimTime::Seconds(12)},
      {"England: scaling it up", SimTime::Seconds(22)},
  };

  CalliopeClient& viewer = calliope.AddClient("office");
  bool viewing = false;
  GroupId group = 0;
  [](CalliopeClient* c, bool* done, GroupId* out) -> Task {
    if (!(co_await c->Connect("bob", "bob-key")).ok()) {
      co_return;
    }
    (void)co_await c->RegisterPort("v", "rtp-video");
    (void)co_await c->RegisterPort("a", "vat-audio");
    std::vector<std::string> components = {"v", "a"};
    auto sem = co_await c->RegisterCompositePort("sem", "seminar", std::move(components));
    if (!sem.ok()) {
      co_return;
    }
    auto play = co_await c->Play("usenix-seminar", "sem");
    if (!play.ok()) {
      std::fprintf(stderr, "play: %s\n", play.status().ToString().c_str());
      co_return;
    }
    *out = play->group;
    *done = true;
  }(&viewer, &viewing, &group);
  while (!viewing && calliope.sim().Now() < SimTime::Seconds(200)) {
    calliope.sim().RunFor(SimTime::Millis(50));
  }

  for (const IndexEntry& entry : index) {
    std::printf("skipping to \"%s\" (%s)...\n", entry.speaker, entry.offset.ToString().c_str());
    bool sought = false;
    [](CalliopeClient* c, GroupId g, SimTime offset, bool* done) -> Task {
      // One seek repositions *both* streams of the group simultaneously.
      *done = (co_await c->Vcr(g, VcrCommand::Op::kSeek, offset)).ok();
    }(&viewer, group, entry.offset, &sought);
    calliope.sim().RunFor(SimTime::Seconds(4));
    const ClientDisplayPort* v = viewer.FindPort("v");
    const ClientDisplayPort* a = viewer.FindPort("a");
    std::printf("  seek %s; running totals: %lld video / %lld audio packets\n",
                sought ? "ok" : "FAILED", static_cast<long long>(v->packets_received()),
                static_cast<long long>(a->packets_received()));
  }

  [](CalliopeClient* c, GroupId g) -> Task { co_await c->Quit(g); }(&viewer, group);
  calliope.sim().RunFor(SimTime::Seconds(1));
  std::printf("\ndone; both component streams started, sought and stopped together.\n");
  return 0;
}
