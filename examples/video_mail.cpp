// Video mail (§2.1): record a message from a camera, then the recipient
// plays it back — exercising the full record path: client UDP -> MSU network
// process -> IB-tree builder with a stored delivery schedule -> write-behind
// disk process -> catalog entry, then playback of the recording.
//
//   $ ./build/examples/video_mail
#include <cstdio>

#include "src/calliope/calliope.h"

using namespace calliope;

int main() {
  Installation calliope;
  if (!calliope.Boot().ok()) {
    return 1;
  }

  // --- Alice records a 15-second video note ------------------------------
  CalliopeClient& alice = calliope.AddClient("alice-desk");
  bool recorded = false;
  [](CalliopeClient* c, Installation* inst, bool* done) -> Task {
    if (!(co_await c->Connect("alice", "alice-key")).ok()) {
      co_return;
    }
    if (!(co_await c->RegisterPort("camera", "rtp-video")).ok()) {
      co_return;
    }
    // The request carries a length estimate (30 s) that sizes the disk
    // reservation; the actual message is only 15 s, and the difference is
    // returned to the system at commit.
    const Bytes free_before = inst->msu(0).fs().TotalFreeSpace();
    auto record = co_await c->Record("note-for-bob", "rtp-video", "camera", SimTime::Seconds(30));
    if (!record.ok()) {
      std::fprintf(stderr, "record: %s\n", record.status().ToString().c_str());
      co_return;
    }
    std::printf("recording accepted, group %lld; reserved %s of disk\n",
                static_cast<long long>(record->group),
                (free_before - inst->msu(0).fs().TotalFreeSpace()).ToString().c_str());

    // The camera pushes an NV-like variable-rate stream to the MSU.
    VbrSourceConfig camera;
    camera.target_average = DataRate::KilobitsPerSec(700);
    camera.seed = 0xA11CE;
    const PacketSequence packets = GenerateVbr(camera, SimTime::Seconds(15));
    auto sent = co_await c->SendRecording(record->group, 0, packets);
    std::printf("camera sent %lld packets\n", sent.ok() ? static_cast<long long>(*sent) : -1);

    if (Status quit = co_await c->Quit(record->group); !quit.ok()) {
      std::fprintf(stderr, "quit: %s\n", quit.ToString().c_str());
      co_return;
    }
    std::printf("recording sealed; unused reservation returned (free space now %s)\n",
                inst->msu(0).fs().TotalFreeSpace().ToString().c_str());
    *done = true;
  }(&alice, &calliope, &recorded);

  while (!recorded && calliope.sim().Now() < SimTime::Seconds(60)) {
    calliope.sim().RunFor(SimTime::Millis(50));
  }
  if (!recorded) {
    std::fprintf(stderr, "recording never completed\n");
    return 1;
  }

  // --- Bob checks his mail and plays the note ----------------------------
  CalliopeClient& bob = calliope.AddClient("bob-desk");
  bool played = false;
  [](CalliopeClient* c, bool* done) -> Task {
    if (!(co_await c->Connect("bob", "bob-key")).ok()) {
      co_return;
    }
    auto listing = co_await c->ListContent();
    if (listing.ok()) {
      for (const ContentInfo& info : *listing) {
        std::printf("mailbox: %s (%s, %s)\n", info.name.c_str(), info.type.c_str(),
                    info.duration.ToString().c_str());
      }
    }
    if (!(co_await c->RegisterPort("screen", "rtp-video")).ok()) {
      co_return;
    }
    auto play = co_await c->Play("note-for-bob", "screen");
    if (!play.ok()) {
      std::fprintf(stderr, "play: %s\n", play.status().ToString().c_str());
      co_return;
    }
    *done = true;
  }(&bob, &played);

  while (!played && calliope.sim().Now() < SimTime::Seconds(120)) {
    calliope.sim().RunFor(SimTime::Millis(50));
  }
  calliope.sim().RunFor(SimTime::Seconds(16));

  const ClientDisplayPort* screen = bob.FindPort("screen");
  std::printf("\nBob received %lld packets (%s) of Alice's note; %lld control packets\n",
              static_cast<long long>(screen->packets_received()),
              screen->bytes_received().ToString().c_str(),
              static_cast<long long>(screen->control_packets_received()));
  std::printf("(the RTP module interleaved its control messages into the recording\n");
  std::printf(" and replayed them out the control port, per paper section 2.3.2)\n");
  return 0;
}
