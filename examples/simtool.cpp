// simtool: a command-line driver for ad-hoc capacity experiments.
//
//   simtool [--msus N] [--streams N] [--seconds N] [--vbr]
//                [--disks-per-hba a,b,...] [--striped] [--elevator]
//                [--jitter MS] [--loss PCT] [--seed N]
//
// Boots an installation, loads one title per requested stream, plays them
// all, and prints an operator-style report: admission, delivery quality,
// device utilizations. Handy for exploring configurations beyond the
// paper's tables — e.g. "what does this box do with 3 disks on 2 HBAs?"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"

using namespace calliope;

namespace {

struct Options {
  int msus = 1;
  int streams = 22;
  int seconds = 30;
  bool vbr = false;
  bool striped = false;
  bool elevator = false;
  std::vector<int> disks_per_hba = {2};
  int jitter_ms = 0;
  double loss = 0;
  uint64_t seed = 1996;
};

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--msus") {
      options->msus = std::atoi(next_value());
    } else if (arg == "--streams") {
      options->streams = std::atoi(next_value());
    } else if (arg == "--seconds") {
      options->seconds = std::atoi(next_value());
    } else if (arg == "--vbr") {
      options->vbr = true;
    } else if (arg == "--striped") {
      options->striped = true;
    } else if (arg == "--elevator") {
      options->elevator = true;
    } else if (arg == "--jitter") {
      options->jitter_ms = std::atoi(next_value());
    } else if (arg == "--loss") {
      options->loss = std::atof(next_value()) / 100.0;
    } else if (arg == "--seed") {
      options->seed = static_cast<uint64_t>(std::atoll(next_value()));
    } else if (arg == "--disks-per-hba") {
      options->disks_per_hba.clear();
      const char* spec = next_value();
      while (spec != nullptr && *spec != '\0') {
        options->disks_per_hba.push_back(std::atoi(spec));
        const char* comma = std::strchr(spec, ',');
        spec = comma != nullptr ? comma + 1 : nullptr;
      }
    } else {
      std::fprintf(stderr,
                   "usage: simtool [--msus N] [--streams N] [--seconds N] [--vbr]\n"
                   "               [--disks-per-hba a,b,...] [--striped] [--elevator]\n"
                   "               [--jitter MS] [--loss PCT] [--seed N]\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    return 2;
  }

  InstallationConfig config;
  config.msu_count = options.msus;
  config.msu_machine.disks_per_hba = options.disks_per_hba;
  config.msu.striped_layout = options.striped;
  config.msu.elevator_scheduling = options.elevator;
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.5);
  config.network.udp_jitter_max = SimTime::Millis(options.jitter_ms);
  config.network.udp_loss_rate = options.loss;
  config.seed = options.seed;
  Installation calliope(config);
  if (Status booted = calliope.Boot(); !booted.ok()) {
    std::fprintf(stderr, "boot: %s\n", booted.ToString().c_str());
    return 1;
  }

  const std::string type = options.vbr ? "rtp-video" : "mpeg1";
  for (int i = 0; i < options.streams; ++i) {
    const size_t msu = static_cast<size_t>(i % options.msus);
    Status loaded;
    if (options.vbr) {
      VbrSourceConfig source = Graph2File(i % 3);
      source.seed ^= static_cast<uint64_t>(i) * 131;
      loaded = calliope.LoadPackets(
          "title" + std::to_string(i), type,
          GenerateVbr(source, SimTime::Seconds(options.seconds + 60)), msu);
    } else {
      loaded = calliope.LoadMpegMovie("title" + std::to_string(i),
                                      SimTime::Seconds(options.seconds + 60), msu, false);
    }
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.ToString().c_str());
      return 1;
    }
  }

  CalliopeClient& client = calliope.AddClient("viewers");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  calliope.sim().RunFor(SimTime::Seconds(1));

  int done = 0;
  int admitted = 0;
  int queued = 0;
  for (int i = 0; i < options.streams; ++i) {
    [](CalliopeClient* c, std::string title, std::string port, std::string port_type, int* n,
       int* ok, int* q) -> Task {
      if ((co_await c->RegisterPort(port, port_type)).ok()) {
        auto play = co_await c->Play(std::move(title), std::move(port));
        if (play.ok() && !play->queued) {
          ++*ok;
        } else if (play.ok() && play->queued) {
          ++*q;
        }
      }
      ++*n;
    }(&client, "title" + std::to_string(i), "tv" + std::to_string(i), type, &done, &admitted,
      &queued);
  }
  while (done < options.streams && calliope.sim().Now() < SimTime::Seconds(120)) {
    calliope.sim().RunFor(SimTime::Millis(20));
  }
  calliope.sim().RunFor(SimTime::Seconds(options.seconds));

  // ---- report ----
  std::printf("configuration: %d MSU(s), disks/hba=[", options.msus);
  for (size_t i = 0; i < options.disks_per_hba.size(); ++i) {
    std::printf("%s%d", i != 0 ? "," : "", options.disks_per_hba[i]);
  }
  std::printf("], %s, %s layout, %s scheduling\n", type.c_str(),
              options.striped ? "striped" : "per-disk",
              options.elevator ? "elevator" : "round-robin");
  std::printf("requests: %d, admitted: %d, queued: %d\n", options.streams, admitted, queued);

  LatenessHistogram lateness;
  Bytes disk_bytes;
  for (int m = 0; m < options.msus; ++m) {
    Msu& msu = calliope.msu(static_cast<size_t>(m));
    lateness.Merge(msu.AggregateLateness());
    for (size_t d = 0; d < msu.machine().disk_count(); ++d) {
      disk_bytes += msu.machine().disk(d).bytes_transferred();
    }
    std::printf("msu%d: cpu %.0f%%, %d active streams, %.2f MB/s from disks\n", m,
                msu.machine().cpu().Utilization() * 100.0, msu.active_stream_count(),
                msu.machine().fddi().bytes_sent().megabytes() /
                    calliope.sim().Now().seconds());
  }
  std::printf("delivery: %lld packets, %.1f%% within 50 ms of schedule, max %s late\n",
              static_cast<long long>(lateness.total_count()),
              100.0 * lateness.FractionWithin(SimTime::Millis(50)),
              lateness.MaxRecorded().ToString().c_str());
  int64_t received = 0;
  for (int i = 0; i < options.streams; ++i) {
    const ClientDisplayPort* port = client.FindPort("tv" + std::to_string(i));
    if (port != nullptr) {
      received += port->packets_received();
    }
  }
  std::printf("clients received %lld packets", static_cast<long long>(received));
  if (options.loss > 0 || options.jitter_ms > 0) {
    std::printf(" (network: %.1f%% loss, up to %d ms jitter; %lld dropped)",
                options.loss * 100.0, options.jitter_ms,
                static_cast<long long>(calliope.network().udp_dropped()));
  }
  std::printf("\n");
  return 0;
}
