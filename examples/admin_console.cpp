// Administrative operations (§2.1, §2.3.1): the things only a customer with
// admin rights can do — load offline-filtered fast-scan variants, replicate
// popular content across disks, and delete items — plus a look at the MSU
// file-system state an operator would care about.
//
//   $ ./build/examples/admin_console
#include <cstdio>

#include "src/calliope/calliope.h"

using namespace calliope;

namespace {

void PrintMsuState(Installation& calliope, const char* when) {
  Msu& msu = calliope.msu(0);
  std::printf("[msu0 %s] files:", when);
  for (const std::string& name : msu.fs().ListFiles()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n[msu0 %s] free space %s, metadata flushes so far: %lld\n", when,
              msu.fs().TotalFreeSpace().ToString().c_str(),
              static_cast<long long>(msu.fs().metadata_flushes()));
}

}  // namespace

int main() {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {2, 2};  // a 4-disk box
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return 1;
  }

  // Content arrives without fast-scan variants — as a plain recording would.
  if (!calliope.LoadMpegMovie("premiere", SimTime::Seconds(120), 0, /*with_fast_scan=*/false)
           .ok()) {
    return 1;
  }
  PrintMsuState(calliope, "after load");

  // --- The administrator produces and registers the filtered variants -----
  // "An administrative interface is used to load the fast forward and fast
  // backward files into the server in a way that allows the server to
  // associate the files with the fast forward and fast backward VCR
  // commands."
  {
    // Offline filter run (every 15th frame; reversed for fast-backward).
    const MpegStream original =
        EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(120),
                   config.seed ^ std::hash<std::string>{}("premiere"));
    const MpegStream ff = FilterFastForward(original, 15);
    const MpegStream fb = FilterFastBackward(original, 15);
    std::printf("\nfiltered: %zu frames -> %zu intra frames (%.1fx shorter)\n",
                original.frames.size(), ff.frames.size(),
                original.duration().seconds() / ff.duration().seconds());
    // Install the filtered files on the MSU next to the original...
    IbTreeBuilder ff_builder, fb_builder;
    for (const MediaPacket& packet : PacketizeCbr(ff, Bytes::KiB(4))) {
      (void)ff_builder.Add(packet);
    }
    for (const MediaPacket& packet : PacketizeCbr(fb, Bytes::KiB(4))) {
      (void)fb_builder.Add(packet);
    }
    const int disk = calliope.msu(0).fs().Lookup("premiere.mpg").value()->home_disk();
    (void)calliope.msu(0).fs().InstallImage("premiere.ff", ff_builder.Finish(), false, disk);
    (void)calliope.msu(0).fs().InstallImage("premiere.fb", fb_builder.Finish(), false, disk);
  }

  // ...then tell the Coordinator about them over the admin session.
  CalliopeClient& admin = calliope.AddClient("ops-console");
  bool registered = false;
  [](CalliopeClient* c, bool* done) -> Task {
    if (!(co_await c->Connect("alice", "alice-key")).ok()) {
      co_return;
    }
    const Status loaded =
        co_await c->LoadFastScan("premiere", "premiere.ff", "premiere.fb");
    std::printf("LoadFastScan: %s\n", loaded.ok() ? "ok" : loaded.ToString().c_str());
    auto listing = co_await c->ListContent();
    if (listing.ok()) {
      for (const ContentInfo& info : *listing) {
        std::printf("catalog: %s fast-scan=%s\n", info.name.c_str(),
                    info.has_fast_scan ? "yes" : "no");
      }
    }
    *done = true;
  }(&admin, &registered);
  while (!registered && calliope.sim().Now() < SimTime::Seconds(30)) {
    calliope.sim().RunFor(SimTime::Millis(20));
  }

  // --- Replicate the premiere across the other disks ----------------------
  // "we can make copies of popular content on several disks, but we must
  // anticipate usage trends in order to choose the content to copy."
  for (int disk = 1; disk < 4; ++disk) {
    const Status replicated = calliope.ReplicateContent("premiere", 0, disk);
    std::printf("replicate onto disk %d: %s\n", disk,
                replicated.ok() ? "ok" : replicated.ToString().c_str());
  }
  PrintMsuState(calliope, "after replication");

  // --- Prove a viewer can fast-forward now --------------------------------
  CalliopeClient& viewer = calliope.AddClient("viewer");
  bool watched = false;
  [](CalliopeClient* c, bool* done) -> Task {
    (void)co_await c->Connect("bob", "bob-key");
    (void)co_await c->RegisterPort("tv", "mpeg1");
    auto play = co_await c->Play("premiere", "tv");
    if (!play.ok()) {
      co_return;
    }
    co_await c->Vcr(play->group, VcrCommand::Op::kFastForward);
    *done = true;
  }(&viewer, &watched);
  while (!watched && calliope.sim().Now() < SimTime::Seconds(60)) {
    calliope.sim().RunFor(SimTime::Millis(20));
  }
  calliope.sim().RunFor(SimTime::Seconds(3));
  std::printf("\nviewer in fast-forward: %lld packets received\n",
              static_cast<long long>(viewer.FindPort("tv")->packets_received()));

  // --- Non-admins cannot delete; the admin can ----------------------------
  bool finished = false;
  [](CalliopeClient* viewer_client, CalliopeClient* admin_client, bool* done) -> Task {
    const Status denied = co_await viewer_client->DeleteContent("premiere");
    std::printf("\nviewer delete attempt: %s\n", denied.ToString().c_str());
    // The viewer must let go of the stream before content can be removed.
    const Status still_in_use = co_await admin_client->DeleteContent("premiere");
    std::printf("admin delete while playing: %s\n", still_in_use.ToString().c_str());
    *done = true;
  }(&viewer, &admin, &finished);
  while (!finished && calliope.sim().Now() < SimTime::Seconds(90)) {
    calliope.sim().RunFor(SimTime::Millis(20));
  }
  PrintMsuState(calliope, "at shutdown");
  return 0;
}
